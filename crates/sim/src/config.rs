//! Simulation parameters — Table 2 of the paper, plus derived quantities.

use serde::{Deserialize, Serialize};

/// Full configuration of the simulated OuterSPACE system.
///
/// [`OuterSpaceConfig::default`] reproduces Table 2 exactly: 16 tiles of 16
/// PEs at 1.5 GHz, 16 kB shared L0 caches per tile (multiply phase), 2 kB
/// private cache + 2 kB scratchpad per active PE-pair (merge phase), four
/// 4 kB L1 victim caches, and HBM 2.0 with 16 pseudo-channels of 8000 MB/s.
///
/// # Example
///
/// ```
/// use outerspace_sim::OuterSpaceConfig;
///
/// let cfg = OuterSpaceConfig::default();
/// assert_eq!(cfg.total_pes(), 256);
/// assert_eq!(cfg.hbm_total_bandwidth_bytes_per_sec(), 128_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OuterSpaceConfig {
    /// PE clock in GHz (Table 2: 1.5 GHz).
    pub clock_ghz: f64,
    /// Number of processing tiles (16).
    pub n_tiles: u32,
    /// PEs per tile (16).
    pub pes_per_tile: u32,
    /// Outstanding-request queue entries per PE (64).
    pub outstanding_requests: u32,
    /// Private PE scratchpad in bytes (1 kB).
    pub pe_scratchpad_bytes: u32,

    /// Multiply-phase L0: shared per-tile cache size in bytes (16 kB).
    pub l0_multiply_bytes: u32,
    /// L0 associativity (4).
    pub l0_ways: u32,
    /// L0 MSHRs in multiply mode (32).
    pub l0_mshrs_multiply: u32,

    /// Merge-phase private cache per active PE-pair in bytes (2 kB).
    pub l0_merge_bytes: u32,
    /// Merge-phase scratchpad per active PE-pair in bytes (2 kB).
    pub merge_scratchpad_bytes: u32,
    /// L0 MSHRs in merge mode (8).
    pub l0_mshrs_merge: u32,
    /// Active PEs per tile during the merge phase (8; the rest are
    /// power-gated, §6). They operate as loader/sorter pairs.
    pub merge_active_pes_per_tile: u32,

    /// L1 victim cache size in bytes (4 kB each).
    pub l1_bytes: u32,
    /// L1 associativity (2).
    pub l1_ways: u32,
    /// Number of L1 caches (4).
    pub n_l1: u32,
    /// L1 MSHRs (32).
    pub l1_mshrs: u32,

    /// Cache block size in bytes (64).
    pub block_bytes: u32,

    /// HBM pseudo-channels (16).
    pub hbm_channels: u32,
    /// Per-channel bandwidth in MB/s (8000).
    pub hbm_channel_mb_per_sec: u32,
    /// Minimum HBM access latency in nanoseconds (80).
    pub hbm_latency_min_ns: f64,
    /// Maximum HBM access latency in nanoseconds (150).
    pub hbm_latency_max_ns: f64,

    /// L0 hit latency in PE cycles.
    pub l0_hit_cycles: u64,
    /// Additional L1 hit latency in PE cycles (includes the 16×16 crossbar
    /// traversal).
    pub l1_hit_cycles: u64,
    /// Crossbar traversal cycles charged on the L1→HBM path (4×4 swizzle
    /// switch).
    pub xbar_cycles: u64,
}

impl Default for OuterSpaceConfig {
    fn default() -> Self {
        OuterSpaceConfig {
            clock_ghz: 1.5,
            n_tiles: 16,
            pes_per_tile: 16,
            outstanding_requests: 64,
            pe_scratchpad_bytes: 1024,
            l0_multiply_bytes: 16 * 1024,
            l0_ways: 4,
            l0_mshrs_multiply: 32,
            l0_merge_bytes: 2 * 1024,
            merge_scratchpad_bytes: 2 * 1024,
            l0_mshrs_merge: 8,
            merge_active_pes_per_tile: 8,
            l1_bytes: 4 * 1024,
            l1_ways: 2,
            n_l1: 4,
            l1_mshrs: 32,
            block_bytes: 64,
            hbm_channels: 16,
            hbm_channel_mb_per_sec: 8000,
            hbm_latency_min_ns: 80.0,
            hbm_latency_max_ns: 150.0,
            l0_hit_cycles: 2,
            l1_hit_cycles: 10,
            xbar_cycles: 3,
        }
    }
}

impl OuterSpaceConfig {
    /// Total PEs in the system (`n_tiles × pes_per_tile`; 256 by default).
    pub fn total_pes(&self) -> u32 {
        self.n_tiles * self.pes_per_tile
    }

    /// Merge-phase worker pairs per tile (half the active PEs: one loader +
    /// one sorter per pair, §5.4.2).
    pub fn merge_pairs_per_tile(&self) -> u32 {
        (self.merge_active_pes_per_tile / 2).max(1)
    }

    /// Aggregate HBM bandwidth in bytes/second (128 GB/s by default).
    pub fn hbm_total_bandwidth_bytes_per_sec(&self) -> u64 {
        self.hbm_channels as u64 * self.hbm_channel_mb_per_sec as u64 * 1_000_000
    }

    /// PE cycles needed to transfer one cache block on one HBM channel.
    pub fn hbm_cycles_per_block(&self) -> f64 {
        let ns_per_block =
            self.block_bytes as f64 / (self.hbm_channel_mb_per_sec as f64 * 1e6) * 1e9;
        ns_per_block * self.clock_ghz
    }

    /// Mean HBM access latency in PE cycles.
    pub fn hbm_latency_cycles(&self) -> f64 {
        0.5 * (self.hbm_latency_min_ns + self.hbm_latency_max_ns) * self.clock_ghz
    }

    /// Seconds represented by `cycles` PE cycles.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Capacity of a merge scratchpad in 12 B elements — the bound on how
    /// many chunk heads a PE-pair can keep resident, which triggers the
    /// recursive sub-merge of §5.4.2 when exceeded.
    pub fn merge_head_capacity(&self) -> usize {
        (self.merge_scratchpad_bytes as usize) / 12
    }

    /// The §8 scale-up configuration: "a silicon-interposed system with 4
    /// HBMs and 4× the PEs on-chip could be realized" — 64 tiles, 64 HBM
    /// pseudo-channels, proportionally more L1 slices.
    pub fn interposed_4x(&self) -> Self {
        let mut cfg = self.clone();
        cfg.n_tiles *= 4;
        cfg.hbm_channels *= 4;
        cfg.n_l1 *= 4;
        cfg
    }

    /// A multi-node system of `nodes` [`OuterSpaceConfig::interposed_4x`]
    /// chips in a torus (§8), approximated for throughput studies as a
    /// proportional widening with an inter-node latency penalty folded into
    /// the crossbar hop count. Node counts must be powers of two.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or not a power of two.
    pub fn torus(&self, nodes: u32) -> Self {
        assert!(nodes > 0 && nodes.is_power_of_two(), "node count must be a power of two");
        let mut cfg = self.interposed_4x();
        cfg.n_tiles *= nodes;
        cfg.hbm_channels *= nodes;
        cfg.n_l1 *= nodes;
        // Each torus hop adds SerDes latency; mean hop count grows with the
        // ring dimension.
        cfg.xbar_cycles += 8 * (nodes as f64).sqrt().round() as u64;
        cfg
    }

    /// Validates internal consistency (non-zero structural parameters).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_tiles == 0 || self.pes_per_tile == 0 {
            return Err("need at least one tile and one PE per tile".into());
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err("block size must be a non-zero power of two".into());
        }
        if self.hbm_channels == 0 || !self.hbm_channels.is_power_of_two() {
            return Err("channel count must be a non-zero power of two".into());
        }
        if self.l0_ways == 0 || self.l1_ways == 0 {
            return Err("associativity must be non-zero".into());
        }
        if self.l0_multiply_bytes < self.block_bytes * self.l0_ways {
            return Err("L0 must hold at least one set".into());
        }
        if self.clock_ghz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.merge_active_pes_per_tile > self.pes_per_tile {
            return Err("cannot activate more merge PEs than exist".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = OuterSpaceConfig::default();
        assert_eq!(c.total_pes(), 256);
        assert_eq!(c.l0_multiply_bytes, 16384);
        assert_eq!(c.l0_merge_bytes, 2048);
        assert_eq!(c.hbm_channels, 16);
        assert_eq!(c.hbm_total_bandwidth_bytes_per_sec(), 128_000_000_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bandwidth_math() {
        let c = OuterSpaceConfig::default();
        // 64 B at 8000 MB/s = 8 ns = 12 cycles at 1.5 GHz.
        assert!((c.hbm_cycles_per_block() - 12.0).abs() < 1e-9);
        // Mean latency (80+150)/2 = 115 ns = 172.5 cycles.
        assert!((c.hbm_latency_cycles() - 172.5).abs() < 1e-9);
    }

    #[test]
    fn merge_head_capacity_matches_scratchpad() {
        let c = OuterSpaceConfig::default();
        assert_eq!(c.merge_head_capacity(), 170);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = OuterSpaceConfig::default();
        c.block_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = OuterSpaceConfig::default();
        c.n_tiles = 0;
        assert!(c.validate().is_err());
        let mut c = OuterSpaceConfig::default();
        c.merge_active_pes_per_tile = 99;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycles_to_seconds() {
        let c = OuterSpaceConfig::default();
        assert!((c.cycles_to_seconds(1_500_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interposed_4x_scales_resources() {
        let base = OuterSpaceConfig::default();
        let big = base.interposed_4x();
        assert_eq!(big.total_pes(), 1024);
        assert_eq!(big.hbm_channels, 64);
        assert_eq!(big.hbm_total_bandwidth_bytes_per_sec(), 512_000_000_000);
        assert!(big.validate().is_ok());
    }

    #[test]
    fn torus_adds_hop_latency() {
        let base = OuterSpaceConfig::default();
        let t4 = base.torus(4);
        assert_eq!(t4.total_pes(), 4096);
        assert!(t4.xbar_cycles > base.xbar_cycles);
        assert!(t4.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn torus_rejects_non_power_of_two() {
        let _ = OuterSpaceConfig::default().torus(3);
    }

    #[test]
    fn config_serializes() {
        let c = OuterSpaceConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"n_tiles\":16"));
    }
}
