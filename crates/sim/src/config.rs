//! Simulation parameters — Table 2 of the paper, plus derived quantities,
//! the fault-injection knobs, and the typed [`ConfigError`] validation.

use outerspace_json::{impl_to_json, Json, ToJson};

/// Which machine model the simulator instantiates (see `crate::model`).
///
/// The configuration struct is shared: Table-2 fields parameterize both
/// designs (clock, HBM, caches), while the `sparch_*`/`merge_tree_*` fields
/// only matter under [`MachineKind::SpArch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MachineKind {
    /// The OuterSPACE pipeline: format conversion, tiled outer-product
    /// multiply into a chunked intermediate, streaming multi-way merge.
    #[default]
    OuterSpace,
    /// The SpArch analog: condensed-A streamed multiply feeding a pipelined
    /// comparator-array merge tree with a Huffman merge scheduler.
    SpArch,
}

impl MachineKind {
    /// Stable identifier used in JSON artifacts and memo-cache keys.
    pub fn as_str(self) -> &'static str {
        match self {
            MachineKind::OuterSpace => "outerspace",
            MachineKind::SpArch => "sparch",
        }
    }

    /// Inverse of [`MachineKind::as_str`].
    pub fn parse(s: &str) -> Option<MachineKind> {
        match s {
            "outerspace" => Some(MachineKind::OuterSpace),
            "sparch" => Some(MachineKind::SpArch),
            _ => None,
        }
    }
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ToJson for MachineKind {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

/// A violated configuration invariant, returned by
/// [`OuterSpaceConfig::validate`] and [`crate::Simulator::new`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `n_tiles` or `pes_per_tile` is zero.
    NoProcessingElements,
    /// Cache block size is zero or not a power of two.
    BadBlockSize {
        /// The offending value.
        got: u32,
    },
    /// L0 or L1 associativity is not a power of two (set indexing assumes
    /// power-of-two ways; a DSE sweep must skip such points, not panic).
    BadAssociativity {
        /// The offending value.
        got: u32,
    },
    /// HBM channel count is zero or not a power of two.
    BadChannelCount {
        /// The offending value.
        got: u32,
    },
    /// L0 or L1 associativity is zero.
    ZeroAssociativity,
    /// The multiply-phase L0 cannot hold even one set.
    CacheTooSmall {
        /// Configured L0 size in bytes.
        l0_bytes: u32,
        /// Minimum size implied by `block_bytes * l0_ways` (computed in u64
        /// so extreme sweep points report the true requirement).
        required: u64,
    },
    /// The PE clock is zero, negative, or non-finite.
    NonPositiveClock {
        /// The offending value in GHz.
        got: f64,
    },
    /// More merge-phase PEs activated than exist in a tile.
    TooManyMergePes {
        /// Requested active merge PEs per tile.
        active: u32,
        /// PEs physically present per tile.
        per_tile: u32,
    },
    /// The per-PE outstanding-request queue has no entries.
    ZeroQueueCapacity,
    /// A fault-model probability knob is outside `[0, 1]` or non-finite.
    BadFaultProbability {
        /// Which knob (`"hbm_ber"`, `"drop_rate"`, or `"ber_silent"`).
        knob: &'static str,
        /// The offending value.
        got: f64,
    },
    /// Response drops are enabled but the retry budget or timeout is zero,
    /// so a dropped response could never be recovered.
    BadRetryPolicy,
    /// SpArch machine parameters out of range: the merge tree needs at
    /// least two ways and at least one multiplier PE.
    BadSparchShape {
        /// Configured merge-tree arity.
        merge_tree_ways: u32,
        /// Configured multiplier PE count.
        sparch_mul_pes: u32,
    },
    /// More PEs killed than exist in the system.
    TooManyKilledPes {
        /// Requested kill count.
        kills: u32,
        /// Total PEs in the system.
        total: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::NoProcessingElements => {
                write!(f, "need at least one tile and one PE per tile")
            }
            ConfigError::BadBlockSize { got } => {
                write!(f, "block size must be a non-zero power of two, got {got}")
            }
            ConfigError::BadChannelCount { got } => {
                write!(f, "channel count must be a non-zero power of two, got {got}")
            }
            ConfigError::ZeroAssociativity => write!(f, "associativity must be non-zero"),
            ConfigError::BadAssociativity { got } => {
                write!(f, "associativity must be a power of two, got {got}")
            }
            ConfigError::CacheTooSmall { l0_bytes, required } => {
                write!(f, "L0 must hold at least one set: {l0_bytes} B < {required} B")
            }
            ConfigError::NonPositiveClock { got } => {
                write!(f, "clock must be positive, got {got} GHz")
            }
            ConfigError::TooManyMergePes { active, per_tile } => {
                write!(f, "cannot activate {active} merge PEs in a {per_tile}-PE tile")
            }
            ConfigError::ZeroQueueCapacity => {
                write!(f, "outstanding-request queue needs at least one entry")
            }
            ConfigError::BadFaultProbability { knob, got } => {
                write!(f, "fault probability {knob} must be in [0, 1], got {got}")
            }
            ConfigError::BadRetryPolicy => {
                write!(f, "response drops enabled but max_retries or timeout_cycles is zero")
            }
            ConfigError::BadSparchShape { merge_tree_ways, sparch_mul_pes } => {
                write!(
                    f,
                    "sparch needs >= 2 merge-tree ways and >= 1 multiplier PE, \
                     got {merge_tree_ways} ways / {sparch_mul_pes} PEs"
                )
            }
            ConfigError::TooManyKilledPes { kills, total } => {
                write!(f, "cannot kill {kills} of {total} PEs")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fault-injection knobs. The default model is **inert**: every probability
/// and kill count is zero, and a zero-fault run is cycle-identical to a
/// simulator without the fault layer compiled in (asserted in
/// `tests/fault_injection.rs`).
///
/// All injection is a deterministic function of `seed` and the position of
/// the access in the run, never of host entropy, so degradation curves are
/// reproducible artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Seed for the injector's counter-based generator.
    pub seed: u64,
    /// HBM bit-error rate: probability that any given *bit* of a block read
    /// from HBM arrives flipped. ECC detects the error; the access is
    /// retried ([`FaultModel::ecc_retry_cycles`] plus a re-transfer).
    pub hbm_ber: f64,
    /// Probability that one attempt of an HBM read response is dropped in
    /// the network and must be recovered by timeout + retry.
    pub drop_rate: f64,
    /// Silent bit-error rate: probability that a bit of an HBM block flips
    /// *and escapes ECC*. No error is raised, no latency is charged — the
    /// delivered value is simply wrong. This is the SDC knob the serve
    /// layer's verification tier exists to catch; the event count surfaces
    /// as `silent_corruptions` in [`crate::stats::PhaseStats`].
    pub ber_silent: f64,
    /// Number of PEs that fail hard during the run (0 = none).
    pub pe_kill_count: u32,
    /// Cycle at which the killed PEs die.
    pub pe_kill_cycle: u64,
    /// Bounded retry budget for dropped responses; exceeding it aborts the
    /// phase with [`crate::SimError::MemoryFailure`].
    pub max_retries: u32,
    /// Latency penalty per ECC detect-and-retry event, in PE cycles
    /// (default ≈ one extra mean-latency HBM round trip).
    pub ecc_retry_cycles: u64,
    /// Base timeout before a dropped response is re-requested; retry `k`
    /// waits `timeout_cycles << k` (exponential backoff).
    pub timeout_cycles: u64,
    /// Per-phase watchdog: abort with [`crate::SimError::WatchdogTimeout`]
    /// if a phase's makespan exceeds this many cycles. 0 disables it.
    pub watchdog_cycles: u64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            seed: 0,
            hbm_ber: 0.0,
            drop_rate: 0.0,
            ber_silent: 0.0,
            pe_kill_count: 0,
            pe_kill_cycle: 0,
            max_retries: 4,
            // ~ mean HBM latency (172.5 cycles at Table 2 defaults): an ECC
            // retry costs about one extra round trip.
            ecc_retry_cycles: 173,
            timeout_cycles: 512,
            watchdog_cycles: 0,
        }
    }
}

impl FaultModel {
    /// True when any injection mechanism can fire.
    pub fn is_active(&self) -> bool {
        self.hbm_ber > 0.0 || self.drop_rate > 0.0 || self.ber_silent > 0.0 || self.pe_kill_count > 0
    }

    fn get_or_default(j: &Json, key: &str, default: f64) -> f64 {
        j.get(key).and_then(Json::as_f64).unwrap_or(default)
    }

    /// Decodes from JSON, tolerating missing keys (older serialized configs
    /// predate the fault model) by falling back to the inert default.
    pub fn from_json(j: &Json) -> FaultModel {
        let d = FaultModel::default();
        FaultModel {
            seed: j.get("seed").and_then(Json::as_u64).unwrap_or(d.seed),
            hbm_ber: Self::get_or_default(j, "hbm_ber", d.hbm_ber),
            drop_rate: Self::get_or_default(j, "drop_rate", d.drop_rate),
            ber_silent: Self::get_or_default(j, "ber_silent", d.ber_silent),
            pe_kill_count: j.get("pe_kill_count").and_then(Json::as_u64).unwrap_or(0) as u32,
            pe_kill_cycle: j.get("pe_kill_cycle").and_then(Json::as_u64).unwrap_or(0),
            max_retries: j
                .get("max_retries")
                .and_then(Json::as_u64)
                .unwrap_or(d.max_retries as u64) as u32,
            ecc_retry_cycles: j
                .get("ecc_retry_cycles")
                .and_then(Json::as_u64)
                .unwrap_or(d.ecc_retry_cycles),
            timeout_cycles: j
                .get("timeout_cycles")
                .and_then(Json::as_u64)
                .unwrap_or(d.timeout_cycles),
            watchdog_cycles: j
                .get("watchdog_cycles")
                .and_then(Json::as_u64)
                .unwrap_or(d.watchdog_cycles),
        }
    }
}

impl_to_json!(FaultModel {
    seed,
    hbm_ber,
    drop_rate,
    ber_silent,
    pe_kill_count,
    pe_kill_cycle,
    max_retries,
    ecc_retry_cycles,
    timeout_cycles,
    watchdog_cycles,
});

/// Full configuration of the simulated OuterSPACE system.
///
/// [`OuterSpaceConfig::default`] reproduces Table 2 exactly: 16 tiles of 16
/// PEs at 1.5 GHz, 16 kB shared L0 caches per tile (multiply phase), 2 kB
/// private cache + 2 kB scratchpad per active PE-pair (merge phase), four
/// 4 kB L1 victim caches, and HBM 2.0 with 16 pseudo-channels of 8000 MB/s.
///
/// # Example
///
/// ```
/// use outerspace_sim::OuterSpaceConfig;
///
/// let cfg = OuterSpaceConfig::default();
/// assert_eq!(cfg.total_pes(), 256);
/// assert_eq!(cfg.hbm_total_bandwidth_bytes_per_sec(), 128_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OuterSpaceConfig {
    /// PE clock in GHz (Table 2: 1.5 GHz).
    pub clock_ghz: f64,
    /// Number of processing tiles (16).
    pub n_tiles: u32,
    /// PEs per tile (16).
    pub pes_per_tile: u32,
    /// Outstanding-request queue entries per PE (64).
    pub outstanding_requests: u32,
    /// Private PE scratchpad in bytes (1 kB).
    pub pe_scratchpad_bytes: u32,

    /// Multiply-phase L0: shared per-tile cache size in bytes (16 kB).
    pub l0_multiply_bytes: u32,
    /// L0 associativity (4).
    pub l0_ways: u32,
    /// L0 MSHRs in multiply mode (32).
    pub l0_mshrs_multiply: u32,

    /// Merge-phase private cache per active PE-pair in bytes (2 kB).
    pub l0_merge_bytes: u32,
    /// Merge-phase scratchpad per active PE-pair in bytes (2 kB).
    pub merge_scratchpad_bytes: u32,
    /// L0 MSHRs in merge mode (8).
    pub l0_mshrs_merge: u32,
    /// Active PEs per tile during the merge phase (8; the rest are
    /// power-gated, §6). They operate as loader/sorter pairs.
    pub merge_active_pes_per_tile: u32,

    /// L1 victim cache size in bytes (4 kB each).
    pub l1_bytes: u32,
    /// L1 associativity (2).
    pub l1_ways: u32,
    /// Number of L1 caches (4).
    pub n_l1: u32,
    /// L1 MSHRs (32).
    pub l1_mshrs: u32,

    /// Cache block size in bytes (64).
    pub block_bytes: u32,

    /// HBM pseudo-channels (16).
    pub hbm_channels: u32,
    /// Per-channel bandwidth in MB/s (8000).
    pub hbm_channel_mb_per_sec: u32,
    /// Minimum HBM access latency in nanoseconds (80).
    pub hbm_latency_min_ns: f64,
    /// Maximum HBM access latency in nanoseconds (150).
    pub hbm_latency_max_ns: f64,

    /// L0 hit latency in PE cycles.
    pub l0_hit_cycles: u64,
    /// Additional L1 hit latency in PE cycles (includes the 16×16 crossbar
    /// traversal).
    pub l1_hit_cycles: u64,
    /// Crossbar traversal cycles charged on the L1→HBM path (4×4 swizzle
    /// switch).
    pub xbar_cycles: u64,

    /// Which machine model to simulate (OuterSPACE by default).
    pub machine: MachineKind,
    /// SpArch only: comparator-array merge-tree arity (64-way in the
    /// paper). Ignored under [`MachineKind::OuterSpace`].
    pub merge_tree_ways: u32,
    /// SpArch only: multiplier-array PE count streaming condensed outer
    /// products (16 in the paper's multiplier array). Ignored under
    /// [`MachineKind::OuterSpace`].
    pub sparch_mul_pes: u32,

    /// Fault-injection knobs (inert by default).
    pub faults: FaultModel,
}

impl Default for OuterSpaceConfig {
    fn default() -> Self {
        OuterSpaceConfig {
            clock_ghz: 1.5,
            n_tiles: 16,
            pes_per_tile: 16,
            outstanding_requests: 64,
            pe_scratchpad_bytes: 1024,
            l0_multiply_bytes: 16 * 1024,
            l0_ways: 4,
            l0_mshrs_multiply: 32,
            l0_merge_bytes: 2 * 1024,
            merge_scratchpad_bytes: 2 * 1024,
            l0_mshrs_merge: 8,
            merge_active_pes_per_tile: 8,
            l1_bytes: 4 * 1024,
            l1_ways: 2,
            n_l1: 4,
            l1_mshrs: 32,
            block_bytes: 64,
            hbm_channels: 16,
            hbm_channel_mb_per_sec: 8000,
            hbm_latency_min_ns: 80.0,
            hbm_latency_max_ns: 150.0,
            l0_hit_cycles: 2,
            l1_hit_cycles: 10,
            xbar_cycles: 3,
            machine: MachineKind::OuterSpace,
            merge_tree_ways: 64,
            sparch_mul_pes: 16,
            faults: FaultModel::default(),
        }
    }
}

impl_to_json!(OuterSpaceConfig {
    clock_ghz,
    n_tiles,
    pes_per_tile,
    outstanding_requests,
    pe_scratchpad_bytes,
    l0_multiply_bytes,
    l0_ways,
    l0_mshrs_multiply,
    l0_merge_bytes,
    merge_scratchpad_bytes,
    l0_mshrs_merge,
    merge_active_pes_per_tile,
    l1_bytes,
    l1_ways,
    n_l1,
    l1_mshrs,
    block_bytes,
    hbm_channels,
    hbm_channel_mb_per_sec,
    hbm_latency_min_ns,
    hbm_latency_max_ns,
    l0_hit_cycles,
    l1_hit_cycles,
    xbar_cycles,
    machine,
    merge_tree_ways,
    sparch_mul_pes,
    faults,
});

impl OuterSpaceConfig {
    /// Total PEs in the system (`n_tiles × pes_per_tile`; 256 by default).
    ///
    /// Computed in u64: a design-space sweep may legitimately probe corner
    /// points (e.g. `u32::MAX` tiles) whose product overflows u32, and the
    /// derived quantities must stay exact there so `validate()` can reject
    /// the point instead of the math silently wrapping.
    pub fn total_pes(&self) -> u64 {
        self.n_tiles as u64 * self.pes_per_tile as u64
    }

    /// Merge-phase worker pairs per tile (half the active PEs: one loader +
    /// one sorter per pair, §5.4.2).
    pub fn merge_pairs_per_tile(&self) -> u32 {
        (self.merge_active_pes_per_tile / 2).max(1)
    }

    /// Aggregate HBM bandwidth in bytes/second (128 GB/s by default).
    ///
    /// Saturating: at extreme sweep bounds (u32::MAX channels of u32::MAX
    /// MB/s) the true product exceeds u64, and a saturated ceiling is the
    /// honest answer for a bandwidth bound — never a wrapped small number.
    pub fn hbm_total_bandwidth_bytes_per_sec(&self) -> u64 {
        (self.hbm_channels as u64)
            .saturating_mul(self.hbm_channel_mb_per_sec as u64)
            .saturating_mul(1_000_000)
    }

    /// PE cycles needed to transfer one cache block on one HBM channel.
    pub fn hbm_cycles_per_block(&self) -> f64 {
        let ns_per_block =
            self.block_bytes as f64 / (self.hbm_channel_mb_per_sec as f64 * 1e6) * 1e9;
        ns_per_block * self.clock_ghz
    }

    /// Mean HBM access latency in PE cycles.
    pub fn hbm_latency_cycles(&self) -> f64 {
        0.5 * (self.hbm_latency_min_ns + self.hbm_latency_max_ns) * self.clock_ghz
    }

    /// Seconds represented by `cycles` PE cycles.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// SpArch merge-tree steady-state throughput in elements per PE cycle.
    ///
    /// A `w`-way comparator array retires one merged element per comparator
    /// column per cycle once the pipeline fills; scaled against the paper's
    /// 16-way baseline column so the default 64-way tree retires 4
    /// elements/cycle.
    pub fn merge_tree_throughput(&self) -> u64 {
        (self.merge_tree_ways as u64 / 16).max(1)
    }

    /// Capacity of a merge scratchpad in 12 B elements — the bound on how
    /// many chunk heads a PE-pair can keep resident, which triggers the
    /// recursive sub-merge of §5.4.2 when exceeded.
    pub fn merge_head_capacity(&self) -> usize {
        (self.merge_scratchpad_bytes as usize) / 12
    }

    /// The §8 scale-up configuration: "a silicon-interposed system with 4
    /// HBMs and 4× the PEs on-chip could be realized" — 64 tiles, 64 HBM
    /// pseudo-channels, proportionally more L1 slices.
    pub fn interposed_4x(&self) -> Self {
        let mut cfg = self.clone();
        // Saturating: scaling an already-extreme sweep point must not wrap
        // (debug) or alias a small machine (release); a saturated value is
        // caught by validate() (u32::MAX is not a power of two).
        cfg.n_tiles = cfg.n_tiles.saturating_mul(4);
        cfg.hbm_channels = cfg.hbm_channels.saturating_mul(4);
        cfg.n_l1 = cfg.n_l1.saturating_mul(4);
        cfg
    }

    /// A multi-node system of `nodes` [`OuterSpaceConfig::interposed_4x`]
    /// chips in a torus (§8), approximated for throughput studies as a
    /// proportional widening with an inter-node latency penalty folded into
    /// the crossbar hop count. Node counts must be powers of two.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or not a power of two.
    pub fn torus(&self, nodes: u32) -> Self {
        assert!(nodes > 0 && nodes.is_power_of_two(), "node count must be a power of two");
        let mut cfg = self.interposed_4x();
        cfg.n_tiles = cfg.n_tiles.saturating_mul(nodes);
        cfg.hbm_channels = cfg.hbm_channels.saturating_mul(nodes);
        cfg.n_l1 = cfg.n_l1.saturating_mul(nodes);
        // Each torus hop adds SerDes latency; mean hop count grows with the
        // ring dimension.
        cfg.xbar_cycles = cfg.xbar_cycles.saturating_add(8 * (nodes as f64).sqrt().round() as u64);
        cfg
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_tiles == 0 || self.pes_per_tile == 0 {
            return Err(ConfigError::NoProcessingElements);
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::BadBlockSize { got: self.block_bytes });
        }
        if self.hbm_channels == 0 || !self.hbm_channels.is_power_of_two() {
            return Err(ConfigError::BadChannelCount { got: self.hbm_channels });
        }
        if self.l0_ways == 0 || self.l1_ways == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        for ways in [self.l0_ways, self.l1_ways] {
            if !ways.is_power_of_two() {
                return Err(ConfigError::BadAssociativity { got: ways });
            }
        }
        // u64: `block_bytes * l0_ways` can exceed u32 at sweep extremes and
        // a wrapped product would wave an undersized cache through.
        let required = self.block_bytes as u64 * self.l0_ways as u64;
        if (self.l0_multiply_bytes as u64) < required {
            return Err(ConfigError::CacheTooSmall {
                l0_bytes: self.l0_multiply_bytes,
                required,
            });
        }
        if self.clock_ghz <= 0.0 || self.clock_ghz.is_nan() || !self.clock_ghz.is_finite() {
            return Err(ConfigError::NonPositiveClock { got: self.clock_ghz });
        }
        if self.merge_active_pes_per_tile > self.pes_per_tile {
            return Err(ConfigError::TooManyMergePes {
                active: self.merge_active_pes_per_tile,
                per_tile: self.pes_per_tile,
            });
        }
        if self.outstanding_requests == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.machine == MachineKind::SpArch
            && (self.merge_tree_ways < 2 || self.sparch_mul_pes == 0)
        {
            return Err(ConfigError::BadSparchShape {
                merge_tree_ways: self.merge_tree_ways,
                sparch_mul_pes: self.sparch_mul_pes,
            });
        }
        for (knob, p) in [
            ("hbm_ber", self.faults.hbm_ber),
            ("drop_rate", self.faults.drop_rate),
            ("ber_silent", self.faults.ber_silent),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::BadFaultProbability { knob, got: p });
            }
        }
        if self.faults.drop_rate > 0.0
            && (self.faults.max_retries == 0 || self.faults.timeout_cycles == 0)
        {
            return Err(ConfigError::BadRetryPolicy);
        }
        if self.faults.pe_kill_count as u64 > self.total_pes() {
            return Err(ConfigError::TooManyKilledPes {
                kills: self.faults.pe_kill_count,
                total: self.total_pes(),
            });
        }
        Ok(())
    }

    /// Decodes a configuration previously emitted through [`ToJson`].
    /// Returns `None` if any Table 2 field is missing or mistyped; the
    /// `faults` object is optional (older artifacts predate it).
    pub fn from_json(j: &Json) -> Option<OuterSpaceConfig> {
        let u32_of = |key: &str| j.get(key).and_then(Json::as_u64).map(|v| v as u32);
        let u64_of = |key: &str| j.get(key).and_then(Json::as_u64);
        let f64_of = |key: &str| j.get(key).and_then(Json::as_f64);
        Some(OuterSpaceConfig {
            clock_ghz: f64_of("clock_ghz")?,
            n_tiles: u32_of("n_tiles")?,
            pes_per_tile: u32_of("pes_per_tile")?,
            outstanding_requests: u32_of("outstanding_requests")?,
            pe_scratchpad_bytes: u32_of("pe_scratchpad_bytes")?,
            l0_multiply_bytes: u32_of("l0_multiply_bytes")?,
            l0_ways: u32_of("l0_ways")?,
            l0_mshrs_multiply: u32_of("l0_mshrs_multiply")?,
            l0_merge_bytes: u32_of("l0_merge_bytes")?,
            merge_scratchpad_bytes: u32_of("merge_scratchpad_bytes")?,
            l0_mshrs_merge: u32_of("l0_mshrs_merge")?,
            merge_active_pes_per_tile: u32_of("merge_active_pes_per_tile")?,
            l1_bytes: u32_of("l1_bytes")?,
            l1_ways: u32_of("l1_ways")?,
            n_l1: u32_of("n_l1")?,
            l1_mshrs: u32_of("l1_mshrs")?,
            block_bytes: u32_of("block_bytes")?,
            hbm_channels: u32_of("hbm_channels")?,
            hbm_channel_mb_per_sec: u32_of("hbm_channel_mb_per_sec")?,
            hbm_latency_min_ns: f64_of("hbm_latency_min_ns")?,
            hbm_latency_max_ns: f64_of("hbm_latency_max_ns")?,
            l0_hit_cycles: u64_of("l0_hit_cycles")?,
            l1_hit_cycles: u64_of("l1_hit_cycles")?,
            xbar_cycles: u64_of("xbar_cycles")?,
            // Machine-model fields are tolerant like `faults`: artifacts
            // older than the abstraction decode as the OuterSPACE default.
            machine: j
                .get("machine")
                .and_then(Json::as_str)
                .and_then(MachineKind::parse)
                .unwrap_or_default(),
            merge_tree_ways: u32_of("merge_tree_ways").unwrap_or(64),
            sparch_mul_pes: u32_of("sparch_mul_pes").unwrap_or(16),
            faults: j.get("faults").map(FaultModel::from_json).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_json::ToJson;

    #[test]
    fn default_matches_table2() {
        let c = OuterSpaceConfig::default();
        assert_eq!(c.total_pes(), 256);
        assert_eq!(c.l0_multiply_bytes, 16384);
        assert_eq!(c.l0_merge_bytes, 2048);
        assert_eq!(c.hbm_channels, 16);
        assert_eq!(c.hbm_total_bandwidth_bytes_per_sec(), 128_000_000_000);
        assert!(c.validate().is_ok());
        assert!(!c.faults.is_active());
    }

    #[test]
    fn bandwidth_math() {
        let c = OuterSpaceConfig::default();
        // 64 B at 8000 MB/s = 8 ns = 12 cycles at 1.5 GHz.
        assert!((c.hbm_cycles_per_block() - 12.0).abs() < 1e-9);
        // Mean latency (80+150)/2 = 115 ns = 172.5 cycles.
        assert!((c.hbm_latency_cycles() - 172.5).abs() < 1e-9);
    }

    #[test]
    fn merge_head_capacity_matches_scratchpad() {
        let c = OuterSpaceConfig::default();
        assert_eq!(c.merge_head_capacity(), 170);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = OuterSpaceConfig { block_bytes: 48, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::BadBlockSize { got: 48 }));
        let c = OuterSpaceConfig { n_tiles: 0, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::NoProcessingElements));
        let c = OuterSpaceConfig { merge_active_pes_per_tile: 99, ..Default::default() };
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooManyMergePes { active: 99, per_tile: 16 })
        );
    }

    #[test]
    fn validation_catches_degenerate_memory_system() {
        let c = OuterSpaceConfig { hbm_channels: 12, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::BadChannelCount { got: 12 }));
        let c = OuterSpaceConfig { l0_ways: 0, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::ZeroAssociativity));
        let c = OuterSpaceConfig { l0_ways: 3, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::BadAssociativity { got: 3 }));
        let c = OuterSpaceConfig { l1_ways: 6, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::BadAssociativity { got: 6 }));
        let c = OuterSpaceConfig { l0_multiply_bytes: 128, ..Default::default() };
        assert_eq!(
            c.validate(),
            Err(ConfigError::CacheTooSmall { l0_bytes: 128, required: 256 })
        );
        let c = OuterSpaceConfig { clock_ghz: 0.0, ..Default::default() };
        assert!(matches!(c.validate(), Err(ConfigError::NonPositiveClock { .. })));
        let c = OuterSpaceConfig { clock_ghz: f64::NAN, ..Default::default() };
        assert!(matches!(c.validate(), Err(ConfigError::NonPositiveClock { .. })));
        let c = OuterSpaceConfig { outstanding_requests: 0, ..Default::default() };
        assert_eq!(c.validate(), Err(ConfigError::ZeroQueueCapacity));
    }

    #[test]
    fn validation_catches_bad_fault_models() {
        let mut c = OuterSpaceConfig::default();
        c.faults.hbm_ber = 1.5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadFaultProbability { knob: "hbm_ber", got: 1.5 })
        );
        let mut c = OuterSpaceConfig::default();
        c.faults.drop_rate = -0.1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadFaultProbability { knob: "drop_rate", .. })
        ));
        let mut c = OuterSpaceConfig::default();
        c.faults.ber_silent = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadFaultProbability { knob: "ber_silent", .. })
        ));
        let mut c = OuterSpaceConfig::default();
        c.faults.drop_rate = 0.01;
        c.faults.max_retries = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadRetryPolicy));
        let mut c = OuterSpaceConfig::default();
        c.faults.pe_kill_count = 10_000;
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooManyKilledPes { kills: 10_000, total: 256 })
        );
        let mut c = OuterSpaceConfig::default();
        c.faults.hbm_ber = 1e-6;
        c.faults.pe_kill_count = 3;
        assert!(c.validate().is_ok());
        assert!(c.faults.is_active());
    }

    #[test]
    fn config_errors_render_messages() {
        let e = ConfigError::CacheTooSmall { l0_bytes: 128, required: 256 };
        assert!(e.to_string().contains("128"));
        let e = ConfigError::BadFaultProbability { knob: "hbm_ber", got: 2.0 };
        assert!(e.to_string().contains("hbm_ber"));
    }

    #[test]
    fn cycles_to_seconds() {
        let c = OuterSpaceConfig::default();
        assert!((c.cycles_to_seconds(1_500_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interposed_4x_scales_resources() {
        let base = OuterSpaceConfig::default();
        let big = base.interposed_4x();
        assert_eq!(big.total_pes(), 1024);
        assert_eq!(big.hbm_channels, 64);
        assert_eq!(big.hbm_total_bandwidth_bytes_per_sec(), 512_000_000_000);
        assert!(big.validate().is_ok());
    }

    #[test]
    fn torus_adds_hop_latency() {
        let base = OuterSpaceConfig::default();
        let t4 = base.torus(4);
        assert_eq!(t4.total_pes(), 4096);
        assert!(t4.xbar_cycles > base.xbar_cycles);
        assert!(t4.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn torus_rejects_non_power_of_two() {
        let _ = OuterSpaceConfig::default().torus(3);
    }

    #[test]
    fn derived_math_survives_extreme_sweep_bounds() {
        // A DSE sweep may probe the very corner of the knob space; none of
        // the derived quantities may overflow/panic there, and validate()
        // must reject gracefully rather than let wrapped math pass.
        let c = OuterSpaceConfig {
            n_tiles: u32::MAX,
            pes_per_tile: u32::MAX,
            hbm_channels: 1 << 31,
            hbm_channel_mb_per_sec: u32::MAX,
            block_bytes: 1 << 31,
            l0_ways: 1 << 31,
            ..Default::default()
        };
        assert_eq!(c.total_pes(), u32::MAX as u64 * u32::MAX as u64);
        // Channels × MB/s × 1e6 exceeds u64: saturate, never wrap.
        assert_eq!(c.hbm_total_bandwidth_bytes_per_sec(), u64::MAX);
        // block_bytes * l0_ways = 2^62 in u64; the 16 kB L0 is too small.
        assert_eq!(
            c.validate(),
            Err(ConfigError::CacheTooSmall { l0_bytes: 16 * 1024, required: 1u64 << 62 })
        );
        // Scaling constructors saturate instead of wrapping (u32::MAX tiles
        // stays u32::MAX), and the saturated point fails validation.
        let scaled = c.torus(65_536);
        assert_eq!(scaled.n_tiles, u32::MAX);
        assert!(scaled.validate().is_err());
        // Kill-count check happens in u64 space: a kill count that exceeds
        // u32-wrapped total_pes but not the true total is accepted.
        let mut big = OuterSpaceConfig {
            n_tiles: 1 << 16,
            pes_per_tile: 1 << 16,
            ..Default::default()
        };
        big.faults.pe_kill_count = u32::MAX; // < 2^32 = total_pes, wraps to 0 in u32
        assert!(big.validate().is_ok());
    }

    #[test]
    fn config_serializes() {
        let c = OuterSpaceConfig::default();
        let json = c.to_json().to_string_compact();
        assert!(json.contains("\"n_tiles\":16"));
        assert!(json.contains("\"faults\""));
    }

    #[test]
    fn config_round_trips_through_json() {
        let mut c = OuterSpaceConfig::default();
        c.faults.hbm_ber = 1e-9;
        c.faults.ber_silent = 3e-8;
        c.faults.seed = 42;
        let parsed = outerspace_json::parse(&c.to_json().to_string_compact()).unwrap();
        assert_eq!(OuterSpaceConfig::from_json(&parsed), Some(c));
        // A silent-only model counts as active (the injector must be built).
        let mut s = OuterSpaceConfig::default();
        s.faults.ber_silent = 1e-8;
        assert!(s.faults.is_active());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn machine_kind_round_trips_and_gates_validation() {
        assert_eq!(MachineKind::parse("outerspace"), Some(MachineKind::OuterSpace));
        assert_eq!(MachineKind::parse("sparch"), Some(MachineKind::SpArch));
        assert_eq!(MachineKind::parse("tpu"), None);
        let c = OuterSpaceConfig::default();
        assert_eq!(c.machine, MachineKind::OuterSpace);
        assert_eq!(c.merge_tree_throughput(), 4);
        // The sparch shape constraint only bites under the SpArch machine.
        let lax = OuterSpaceConfig { merge_tree_ways: 1, ..Default::default() };
        assert!(lax.validate().is_ok());
        let strict = OuterSpaceConfig {
            machine: MachineKind::SpArch,
            merge_tree_ways: 1,
            ..Default::default()
        };
        assert_eq!(
            strict.validate(),
            Err(ConfigError::BadSparchShape { merge_tree_ways: 1, sparch_mul_pes: 16 })
        );
        let sparch = OuterSpaceConfig { machine: MachineKind::SpArch, ..Default::default() };
        assert!(sparch.validate().is_ok());
        let parsed =
            outerspace_json::parse(&sparch.to_json().to_string_compact()).unwrap();
        assert_eq!(OuterSpaceConfig::from_json(&parsed), Some(sparch));
    }

    #[test]
    fn config_decode_tolerates_missing_machine_fields() {
        let c = OuterSpaceConfig::default();
        let mut j = match c.to_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!(),
        };
        j.retain(|(k, _)| !matches!(k.as_str(), "machine" | "merge_tree_ways" | "sparch_mul_pes"));
        let back = OuterSpaceConfig::from_json(&Json::Obj(j)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn config_decode_tolerates_missing_fault_block() {
        let c = OuterSpaceConfig::default();
        let mut j = match c.to_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!(),
        };
        j.retain(|(k, _)| k != "faults");
        let back = OuterSpaceConfig::from_json(&Json::Obj(j)).unwrap();
        assert_eq!(back, c);
    }
}
