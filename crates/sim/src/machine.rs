//! PE timing: local clocks, outstanding-request queues, greedy dispatch.
//!
//! OuterSPACE's PEs are asynchronous SPMD engines that drift apart and only
//! synchronize at phase boundaries (§5.3). Each PE is modeled as a local
//! cycle counter plus a bounded queue of in-flight memory completions (the
//! 64-entry outstanding-request queue of Table 2): issuing a request when
//! the queue is full stalls the PE until the oldest completes — which is how
//! MSHR/queue back-pressure limits memory-level parallelism in the model.

use std::collections::VecDeque;

/// One PE's timeline.
#[derive(Debug, Clone)]
pub struct PeTimeline {
    /// The PE's local cycle counter.
    pub time: u64,
    /// Cycles spent issuing or computing (for utilization accounting).
    pub busy: u64,
    inflight: VecDeque<u64>,
    cap: usize,
}

impl PeTimeline {
    /// A PE starting at cycle 0 with an outstanding queue of `cap` entries.
    pub fn new(cap: usize) -> Self {
        PeTimeline { time: 0, busy: 0, inflight: VecDeque::with_capacity(cap), cap: cap.max(1) }
    }

    /// Spends one issue cycle, stalling first if the outstanding queue is
    /// full. Returns the cycle at which the request leaves the PE.
    pub fn issue(&mut self) -> u64 {
        if self.inflight.len() == self.cap {
            let oldest = self.inflight.pop_front().expect("queue full implies non-empty");
            if oldest > self.time {
                self.time = oldest;
            }
        }
        self.time += 1;
        self.busy += 1;
        self.time
    }

    /// Records an issued request's completion time in the queue.
    pub fn track(&mut self, completion: u64) {
        if self.inflight.len() == self.cap {
            let oldest = self.inflight.pop_front().expect("non-empty");
            if oldest > self.time {
                self.time = oldest;
            }
        }
        self.inflight.push_back(completion);
    }

    /// Spends `cycles` computing.
    pub fn advance(&mut self, cycles: u64) {
        self.time += cycles;
        self.busy += cycles;
    }

    /// Stalls until cycle `t` (no-op if already past it).
    pub fn wait_until(&mut self, t: u64) {
        if t > self.time {
            self.time = t;
        }
    }

    /// Capacity of the outstanding-request queue.
    pub fn queue_cap(&self) -> usize {
        self.cap
    }

    /// Blocks until every in-flight request has completed (phase barrier).
    pub fn drain(&mut self) {
        while let Some(c) = self.inflight.pop_front() {
            if c > self.time {
                self.time = c;
            }
        }
    }
}

/// The PE array with greedy work dispatch (§6 assumes greedy scheduling).
///
/// Hard PE failures (fault injection) are modeled lazily: a PE condemned by
/// [`schedule_kill`](PeArray::schedule_kill) keeps executing until its local
/// clock passes the kill cycle; the next dispatch *reaps* it — the overshoot
/// (work issued past the point of death, which a real array would lose) is
/// re-executed by the earliest surviving PE of the same group, extending the
/// paper's §6 greedy load-balancing argument to partial arrays. Fault-free
/// arrays take none of these paths and schedule exactly as before.
#[derive(Debug, Clone)]
pub struct PeArray {
    pes: Vec<PeTimeline>,
    pes_per_group: usize,
    /// Per-PE hard-failure cycle (`u64::MAX` = never fails).
    kill_at: Vec<u64>,
    dead: Vec<bool>,
    any_kills: bool,
    /// Work items requeued from dead PEs onto survivors.
    pub requeued: u64,
    /// PEs reaped so far.
    pub killed: u32,
    /// Cycles consumed by reap/requeue recovery: the survivor's wait for a
    /// death to become observable plus the re-executed overshoot and
    /// re-issued abandoned requests. These cycles advance survivor
    /// timelines outside the engine's script wrappers, so the engine folds
    /// them into an explicit `lost` bucket instead of `busy`.
    lost: u64,
}

impl PeArray {
    /// Builds `n_groups × pes_per_group` PEs (groups are tiles in the
    /// multiply phase, worker pairs in the merge phase have one PE each).
    pub fn new(n_groups: usize, pes_per_group: usize, queue_cap: usize) -> Self {
        let n = n_groups * pes_per_group;
        PeArray {
            pes: (0..n).map(|_| PeTimeline::new(queue_cap)).collect(),
            pes_per_group,
            kill_at: vec![u64::MAX; n],
            dead: vec![false; n],
            any_kills: false,
            requeued: 0,
            killed: 0,
            lost: 0,
        }
    }

    /// Number of PE groups.
    pub fn n_groups(&self) -> usize {
        self.pes.len() / self.pes_per_group
    }

    /// Total number of PEs.
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// True when the array has no PEs.
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// Condemns PE `idx` to die once its local clock reaches `cycle`.
    pub fn schedule_kill(&mut self, idx: usize, cycle: u64) {
        self.kill_at[idx] = cycle;
        self.any_kills = true;
    }

    /// Number of PEs still alive.
    pub fn live_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Detects PEs whose clocks have crossed their kill cycle and requeues
    /// their lost work onto survivors. No-op when no kills are scheduled.
    fn reap(&mut self) {
        if !self.any_kills {
            return;
        }
        for p in 0..self.pes.len() {
            if self.dead[p] || self.pes[p].time < self.kill_at[p] {
                continue;
            }
            self.dead[p] = true;
            self.killed += 1;
            let at = self.kill_at[p];
            // Roll the corpse back to its moment of death: issue/compute
            // cycles past `at` never happened, and in-flight responses go
            // undelivered.
            let overshoot = self.pes[p].time - at;
            let abandoned = self.pes[p].inflight.len() as u64;
            self.pes[p].time = at;
            self.pes[p].busy = self.pes[p].busy.saturating_sub(overshoot);
            self.pes[p].inflight.clear();
            if overshoot == 0 && abandoned == 0 {
                continue; // died idle: nothing to recover
            }
            // The lost item re-executes on the earliest survivor of the same
            // group (the paper's load balancer is per-tile); if the whole
            // group is gone, any survivor takes it.
            let g = p / self.pes_per_group;
            let survivor = self
                .live_in_group(g)
                .or_else(|| self.earliest_live(0..self.pes.len()));
            if let Some(s) = survivor {
                self.requeued += 1;
                // Re-issue of the abandoned requests plus redone compute;
                // recovery cannot begin before the death is observable.
                // Both the wait and the re-execution are recovery overhead,
                // tallied so the engine can attribute them as lost cycles.
                self.lost += at.saturating_sub(self.pes[s].time);
                self.lost += overshoot + abandoned;
                self.pes[s].wait_until(at);
                self.pes[s].advance(overshoot + abandoned);
            }
        }
    }

    /// Earliest live PE among `range`, if any.
    fn earliest_live(&self, range: std::ops::Range<usize>) -> Option<usize> {
        range.filter(|&p| !self.dead[p]).min_by_key(|&p| self.pes[p].time)
    }

    /// Earliest live PE within group `g`, if any.
    fn live_in_group(&self, g: usize) -> Option<usize> {
        let base = g * self.pes_per_group;
        self.earliest_live(base..base + self.pes_per_group)
    }

    /// The group whose earliest-available live PE is earliest overall —
    /// where a greedy scheduler sends the next work item. `None` when every
    /// PE has failed.
    pub fn try_earliest_group(&mut self) -> Option<usize> {
        self.reap();
        (0..self.n_groups())
            .filter(|&g| self.live_in_group(g).is_some())
            .min_by_key(|&g| self.group_min_time(g))
    }

    /// Infallible [`try_earliest_group`](Self::try_earliest_group) for
    /// callers that do not inject PE failures.
    pub fn earliest_group(&mut self) -> usize {
        self.try_earliest_group().expect("at least one live group")
    }

    /// Reaps once, then selects the earliest live group *and* its earliest
    /// live PE from the same post-reap snapshot. `None` only when every PE
    /// has failed.
    ///
    /// Two-step selection ([`try_earliest_group`](Self::try_earliest_group)
    /// then [`try_earliest_pe_in_group`](Self::try_earliest_pe_in_group)) is
    /// not equivalent under fault injection: each call reaps, and the first
    /// reap's requeue can push a *condemned* survivor past its own kill
    /// cycle, so the second reap may empty the group the first call chose —
    /// misreporting total failure while most of the array is still alive.
    pub fn try_dispatch(&mut self) -> Option<(usize, usize)> {
        self.reap();
        let g = (0..self.n_groups())
            .filter(|&g| self.live_in_group(g).is_some())
            .min_by_key(|&g| self.group_min_time(g))?;
        let pe = self.live_in_group(g).expect("selected group has a live PE");
        Some((g, pe))
    }

    /// The earliest-available live PE index within group `g`, or `None` if
    /// the whole group has failed.
    pub fn try_earliest_pe_in_group(&mut self, g: usize) -> Option<usize> {
        self.reap();
        self.live_in_group(g)
    }

    /// Infallible [`try_earliest_pe_in_group`](Self::try_earliest_pe_in_group).
    pub fn earliest_pe_in_group(&mut self, g: usize) -> usize {
        self.try_earliest_pe_in_group(g).expect("group has a live PE")
    }

    /// The minimum local time over live PEs in group `g` (`u64::MAX` when
    /// the group has fully failed, so greedy selection skips it).
    pub fn group_min_time(&self, g: usize) -> u64 {
        let base = g * self.pes_per_group;
        (base..base + self.pes_per_group)
            .filter(|&p| !self.dead[p])
            .map(|p| self.pes[p].time)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// The minimum local time over all live PEs — the dispatch frontier the
    /// phase watchdog compares against (`u64::MAX` when all have failed).
    pub fn min_live_time(&self) -> u64 {
        self.pes
            .iter()
            .zip(&self.dead)
            .filter(|(_, &d)| !d)
            .map(|(p, _)| p.time)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Mutable access to PE `idx`.
    pub fn pe_mut(&mut self, idx: usize) -> &mut PeTimeline {
        &mut self.pes[idx]
    }

    /// Shared access to PE `idx` (post-phase attribution walks).
    pub fn pe(&self, idx: usize) -> &PeTimeline {
        &self.pes[idx]
    }

    /// Drains all queues and returns the phase makespan (max local time).
    pub fn finish(&mut self) -> u64 {
        self.reap();
        for (pe, &dead) in self.pes.iter_mut().zip(&self.dead) {
            if !dead {
                pe.drain();
            }
        }
        self.pes.iter().map(|p| p.time).max().unwrap_or(0)
    }

    /// Number of PEs that did any work.
    pub fn active_count(&self) -> u32 {
        self.pes.iter().filter(|p| p.busy > 0).count() as u32
    }

    /// Total busy cycles over all PEs.
    pub fn total_busy(&self) -> u64 {
        self.pes.iter().map(|p| p.busy).sum()
    }

    /// Whether PE `idx` has been reaped. Its timeline is frozen at the kill
    /// cycle, so its post-death tail is dead silicon, not idle time.
    pub fn is_dead(&self, idx: usize) -> bool {
        self.dead[idx]
    }

    /// Recovery cycles accumulated by [`reap`](Self::reap) so far (0 in any
    /// kill-free run).
    pub fn recovery_lost(&self) -> u64 {
        self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_costs_one_cycle() {
        let mut pe = PeTimeline::new(4);
        assert_eq!(pe.issue(), 1);
        assert_eq!(pe.issue(), 2);
        assert_eq!(pe.busy, 2);
    }

    #[test]
    fn full_queue_stalls_on_oldest() {
        let mut pe = PeTimeline::new(2);
        pe.track(100);
        pe.track(200);
        // Queue full: next issue must wait for the completion at cycle 100.
        assert_eq!(pe.issue(), 101);
        pe.track(300);
        assert_eq!(pe.issue(), 201);
    }

    #[test]
    fn drain_reaches_last_completion() {
        let mut pe = PeTimeline::new(8);
        pe.track(50);
        pe.track(40);
        pe.drain();
        assert_eq!(pe.time, 50);
    }

    #[test]
    fn wait_until_never_rewinds() {
        let mut pe = PeTimeline::new(2);
        pe.advance(10);
        pe.wait_until(5);
        assert_eq!(pe.time, 10);
        pe.wait_until(20);
        assert_eq!(pe.time, 20);
    }

    #[test]
    fn greedy_dispatch_prefers_idle_group() {
        let mut arr = PeArray::new(2, 2, 4);
        // Load up group 0.
        for pe in 0..2 {
            arr.pe_mut(pe).advance(100);
        }
        assert_eq!(arr.earliest_group(), 1);
        assert_eq!(arr.earliest_pe_in_group(1), 2);
    }

    #[test]
    fn finish_reports_makespan() {
        let mut arr = PeArray::new(2, 2, 4);
        arr.pe_mut(3).advance(77);
        arr.pe_mut(0).track(99);
        assert_eq!(arr.finish(), 99);
        assert_eq!(arr.active_count(), 1); // only PE 3 was busy
    }

    #[test]
    fn killed_pe_is_reaped_and_work_requeued_onto_group_survivor() {
        let mut arr = PeArray::new(2, 2, 4);
        arr.schedule_kill(0, 50);
        // PE 0 runs past its death: 30 cycles of overshoot are lost.
        arr.pe_mut(0).advance(80);
        arr.pe_mut(0).track(90);
        let g = arr.try_earliest_group().expect("survivors exist");
        assert_eq!(arr.killed, 1);
        assert_eq!(arr.requeued, 1);
        assert_eq!(arr.live_count(), 3);
        // Group 1 is untouched, so greedy dispatch prefers it; PE 1 (the
        // group-0 survivor) carries the redone work: 30 overshoot cycles
        // plus one abandoned request, starting no earlier than the death.
        assert_eq!(g, 1);
        assert_eq!(arr.pe_mut(1).time, 50 + 30 + 1);
        // The corpse is frozen at its kill cycle and never selected again.
        assert_eq!(arr.pe_mut(0).time, 50);
        assert_eq!(arr.try_earliest_pe_in_group(0), Some(1));
        // Recovery overhead is tallied: the survivor idled 50 cycles until
        // the death was observable, then redid 30 + 1 cycles of work.
        assert!(arr.is_dead(0) && !arr.is_dead(1));
        assert_eq!(arr.recovery_lost(), 50 + 30 + 1);
    }

    #[test]
    fn fully_dead_group_is_skipped_and_empty_array_yields_none() {
        let mut arr = PeArray::new(2, 2, 4);
        arr.schedule_kill(0, 0);
        arr.schedule_kill(1, 0);
        // Group 0 is gone; dispatch must route everything to group 1.
        assert_eq!(arr.try_earliest_group(), Some(1));
        assert_eq!(arr.try_earliest_pe_in_group(0), None);
        assert_eq!(arr.group_min_time(0), u64::MAX);
        arr.schedule_kill(2, 0);
        arr.schedule_kill(3, 0);
        assert_eq!(arr.try_earliest_group(), None);
        assert_eq!(arr.min_live_time(), u64::MAX);
        // Dying idle (at cycle 0, nothing issued) requeues nothing.
        assert_eq!(arr.requeued, 0);
        assert_eq!(arr.killed, 4);
    }

    #[test]
    fn dispatch_survives_requeue_cascade_onto_condemned_pe() {
        // PE 2 dies with overshoot and its work is requeued onto PE 0 —
        // itself condemned, and pushed past its own kill cycle by the
        // requeue. Because the reap loop has already passed index 0, PE 0
        // stays unreaped-but-doomed, and two-step selection (group, then
        // re-reap, then PE) would observe its group emptying between the
        // calls and misreport total failure. Atomic dispatch must keep
        // returning live PEs until the array is genuinely dead.
        let mut arr = PeArray::new(3, 1, 4);
        arr.schedule_kill(0, 10);
        arr.schedule_kill(2, 10);
        arr.pe_mut(1).advance(100);
        arr.pe_mut(2).advance(15);
        // Reap kills PE 2; its 5 overshoot cycles land on PE 0 (earliest
        // live), pushing it to cycle 15 ≥ its own kill cycle of 10.
        let (g, p) = arr.try_dispatch().expect("two PEs still live");
        assert_eq!((g, p), (0, 0), "doomed-but-unreaped PE is dispatchable");
        // The next dispatch reaps PE 0 and falls through to the survivor.
        let (g, p) = arr.try_dispatch().expect("PE 1 still alive");
        assert_eq!((g, p), (1, 1));
        assert_eq!(arr.killed, 2);
        assert_eq!(arr.live_count(), 1);
        assert_eq!(arr.requeued, 2);
    }

    #[test]
    fn kill_free_array_matches_legacy_selection() {
        let mut arr = PeArray::new(2, 2, 4);
        for pe in 0..2 {
            arr.pe_mut(pe).advance(100);
        }
        assert_eq!(arr.try_earliest_group(), Some(1));
        assert_eq!(arr.earliest_group(), 1);
        assert_eq!(arr.earliest_pe_in_group(1), 2);
        assert_eq!(arr.min_live_time(), 0);
        assert_eq!(arr.live_count(), 4);
    }
}
