//! PE timing: local clocks, outstanding-request queues, greedy dispatch.
//!
//! OuterSPACE's PEs are asynchronous SPMD engines that drift apart and only
//! synchronize at phase boundaries (§5.3). Each PE is modeled as a local
//! cycle counter plus a bounded queue of in-flight memory completions (the
//! 64-entry outstanding-request queue of Table 2): issuing a request when
//! the queue is full stalls the PE until the oldest completes — which is how
//! MSHR/queue back-pressure limits memory-level parallelism in the model.

use std::collections::VecDeque;

/// One PE's timeline.
#[derive(Debug, Clone)]
pub struct PeTimeline {
    /// The PE's local cycle counter.
    pub time: u64,
    /// Cycles spent issuing or computing (for utilization accounting).
    pub busy: u64,
    inflight: VecDeque<u64>,
    cap: usize,
}

impl PeTimeline {
    /// A PE starting at cycle 0 with an outstanding queue of `cap` entries.
    pub fn new(cap: usize) -> Self {
        PeTimeline { time: 0, busy: 0, inflight: VecDeque::with_capacity(cap), cap: cap.max(1) }
    }

    /// Spends one issue cycle, stalling first if the outstanding queue is
    /// full. Returns the cycle at which the request leaves the PE.
    pub fn issue(&mut self) -> u64 {
        if self.inflight.len() == self.cap {
            let oldest = self.inflight.pop_front().expect("queue full implies non-empty");
            if oldest > self.time {
                self.time = oldest;
            }
        }
        self.time += 1;
        self.busy += 1;
        self.time
    }

    /// Records an issued request's completion time in the queue.
    pub fn track(&mut self, completion: u64) {
        if self.inflight.len() == self.cap {
            let oldest = self.inflight.pop_front().expect("non-empty");
            if oldest > self.time {
                self.time = oldest;
            }
        }
        self.inflight.push_back(completion);
    }

    /// Spends `cycles` computing.
    pub fn advance(&mut self, cycles: u64) {
        self.time += cycles;
        self.busy += cycles;
    }

    /// Stalls until cycle `t` (no-op if already past it).
    pub fn wait_until(&mut self, t: u64) {
        if t > self.time {
            self.time = t;
        }
    }

    /// Blocks until every in-flight request has completed (phase barrier).
    pub fn drain(&mut self) {
        while let Some(c) = self.inflight.pop_front() {
            if c > self.time {
                self.time = c;
            }
        }
    }
}

/// The PE array with greedy work dispatch (§6 assumes greedy scheduling).
#[derive(Debug, Clone)]
pub struct PeArray {
    pes: Vec<PeTimeline>,
    pes_per_group: usize,
}

impl PeArray {
    /// Builds `n_groups × pes_per_group` PEs (groups are tiles in the
    /// multiply phase, worker pairs in the merge phase have one PE each).
    pub fn new(n_groups: usize, pes_per_group: usize, queue_cap: usize) -> Self {
        PeArray {
            pes: (0..n_groups * pes_per_group).map(|_| PeTimeline::new(queue_cap)).collect(),
            pes_per_group,
        }
    }

    /// Number of PE groups.
    pub fn n_groups(&self) -> usize {
        self.pes.len() / self.pes_per_group
    }

    /// Total number of PEs.
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// True when the array has no PEs.
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// The group whose earliest-available PE is earliest overall — where a
    /// greedy scheduler sends the next work item.
    pub fn earliest_group(&self) -> usize {
        (0..self.n_groups())
            .min_by_key(|&g| self.group_min_time(g))
            .expect("at least one group")
    }

    /// The earliest-available PE index within group `g`.
    pub fn earliest_pe_in_group(&self, g: usize) -> usize {
        let base = g * self.pes_per_group;
        (base..base + self.pes_per_group)
            .min_by_key(|&p| self.pes[p].time)
            .expect("group is non-empty")
    }

    /// The minimum local time within group `g`.
    pub fn group_min_time(&self, g: usize) -> u64 {
        let base = g * self.pes_per_group;
        self.pes[base..base + self.pes_per_group]
            .iter()
            .map(|p| p.time)
            .min()
            .expect("group is non-empty")
    }

    /// Mutable access to PE `idx`.
    pub fn pe_mut(&mut self, idx: usize) -> &mut PeTimeline {
        &mut self.pes[idx]
    }

    /// Drains all queues and returns the phase makespan (max local time).
    pub fn finish(&mut self) -> u64 {
        for pe in &mut self.pes {
            pe.drain();
        }
        self.pes.iter().map(|p| p.time).max().unwrap_or(0)
    }

    /// Number of PEs that did any work.
    pub fn active_count(&self) -> u32 {
        self.pes.iter().filter(|p| p.busy > 0).count() as u32
    }

    /// Total busy cycles over all PEs.
    pub fn total_busy(&self) -> u64 {
        self.pes.iter().map(|p| p.busy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_costs_one_cycle() {
        let mut pe = PeTimeline::new(4);
        assert_eq!(pe.issue(), 1);
        assert_eq!(pe.issue(), 2);
        assert_eq!(pe.busy, 2);
    }

    #[test]
    fn full_queue_stalls_on_oldest() {
        let mut pe = PeTimeline::new(2);
        pe.track(100);
        pe.track(200);
        // Queue full: next issue must wait for the completion at cycle 100.
        assert_eq!(pe.issue(), 101);
        pe.track(300);
        assert_eq!(pe.issue(), 201);
    }

    #[test]
    fn drain_reaches_last_completion() {
        let mut pe = PeTimeline::new(8);
        pe.track(50);
        pe.track(40);
        pe.drain();
        assert_eq!(pe.time, 50);
    }

    #[test]
    fn wait_until_never_rewinds() {
        let mut pe = PeTimeline::new(2);
        pe.advance(10);
        pe.wait_until(5);
        assert_eq!(pe.time, 10);
        pe.wait_until(20);
        assert_eq!(pe.time, 20);
    }

    #[test]
    fn greedy_dispatch_prefers_idle_group() {
        let mut arr = PeArray::new(2, 2, 4);
        // Load up group 0.
        for pe in 0..2 {
            arr.pe_mut(pe).advance(100);
        }
        assert_eq!(arr.earliest_group(), 1);
        assert_eq!(arr.earliest_pe_in_group(1), 2);
    }

    #[test]
    fn finish_reports_makespan() {
        let mut arr = PeArray::new(2, 2, 4);
        arr.pe_mut(3).advance(77);
        arr.pe_mut(0).track(99);
        assert_eq!(arr.finish(), 99);
        assert_eq!(arr.active_count(), 1); // only PE 3 was busy
    }
}
