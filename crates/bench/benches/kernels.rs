//! Micro-benchmarks of the software kernels: the outer-product phases, the
//! baseline SpGEMMs, SpMV variants, and format conversion.
//!
//! These complement the per-figure binaries (which print the paper's
//! tables). The harness is self-contained (`harness = false`, no criterion)
//! so the workspace builds offline: each kernel is timed over a fixed wall
//! clock budget with a warm-up pass, reporting the median and spread of the
//! per-iteration times. Run with `cargo bench -p outerspace-bench`.

use std::time::{Duration, Instant};

use outerspace::outer::{self, MergeKind};
use outerspace::prelude::*;

const WARMUP: Duration = Duration::from_millis(300);
const BUDGET: Duration = Duration::from_secs(1);

/// Times `f` repeatedly inside the budget and prints median / min / max.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let warm_end = Instant::now() + WARMUP;
    while Instant::now() < warm_end {
        std::hint::black_box(f());
    }
    let mut samples = Vec::new();
    let end = Instant::now() + BUDGET;
    while Instant::now() < end && samples.len() < 1000 {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    println!(
        "{name:<45} {:>12} median  {:>12} min  {:>12} max  ({} iters)",
        fmt_time(median),
        fmt_time(samples[0]),
        fmt_time(*samples.last().expect("non-empty")),
        samples.len()
    );
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

fn fixture(n: u32, nnz: usize, seed: u64) -> (Csr, Csr) {
    (
        outerspace::gen::uniform::matrix(n, n, nnz, seed),
        outerspace::gen::uniform::matrix(n, n, nnz, seed + 1),
    )
}

fn bench_spgemm_algorithms() {
    let (a, b) = fixture(1024, 16_000, 1);
    let a_csc = a.to_csc();
    println!("\n# spgemm");
    bench("spgemm/outer_sequential", || outer::spgemm(&a, &b).unwrap());
    bench("spgemm/outer_parallel_4", || outer::spgemm_parallel(&a, &b, 4).unwrap());
    bench("spgemm/gustavson", || outerspace::baselines::gustavson::spgemm(&a, &b).unwrap());
    bench("spgemm/hash", || outerspace::baselines::hash::spgemm(&a, &b).unwrap());
    bench("spgemm/esc", || outerspace::baselines::esc::spgemm(&a, &b).unwrap());
    bench("spgemm/reference", || outerspace::sparse::ops::spgemm_reference(&a, &b).unwrap());

    println!("\n# outer_phases");
    bench("outer_phases/multiply", || outer::multiply(&a_csc, &b).unwrap());
    // Merge consumes its input, so the setup multiply is inside the timed
    // closure for the merge kinds; subtract the multiply-only row to compare.
    bench("outer_phases/multiply_plus_merge_streaming", || {
        let pp = outer::multiply(&a_csc, &b).unwrap().0;
        outer::merge(pp, MergeKind::Streaming)
    });
    bench("outer_phases/multiply_plus_merge_sort_based", || {
        let pp = outer::multiply(&a_csc, &b).unwrap().0;
        outer::merge(pp, MergeKind::SortBased)
    });
}

fn bench_density_sweep() {
    println!("\n# density_sweep_outer (Fig. 3 regime: fixed nnz, growing dimension)");
    for n in [1024u32, 4096] {
        let (a, b) = fixture(n, 16_000, 2);
        bench(&format!("density_sweep_outer/{n}"), || outer::spgemm(&a, &b).unwrap());
    }
}

fn bench_spmv() {
    let a = outerspace::gen::uniform::matrix(8_192, 8_192, 80_000, 3);
    let a_cc = a.to_csc();
    println!("\n# spmv");
    for r in [0.01f64, 0.1, 1.0] {
        let x = outerspace::gen::vector::sparse(8_192, r, 4);
        bench(&format!("spmv/outer/{r}"), || outer::spmv(&a_cc, &x).unwrap());
        bench(&format!("spmv/mkl_analog/{r}"), || {
            outerspace::baselines::spmv::spmv_dense_vector(&a, &x).unwrap()
        });
    }
}

fn bench_conversion() {
    let a = outerspace::gen::uniform::matrix(4096, 4096, 80_000, 5);
    println!("\n# format_conversion");
    bench("format_conversion/csr_to_csc_via_outer", || outer::csr_to_csc_via_outer(&a));
    bench("format_conversion/csr_to_csc_direct", || a.to_csc());
}

fn bench_simulator() {
    // Simulator throughput itself (not simulated time): how fast the model
    // processes a small workload.
    let a = outerspace::gen::uniform::matrix(1024, 1024, 12_000, 6);
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    println!("\n# simulator");
    bench("simulator_spgemm_1k", || sim.spgemm(&a, &a).unwrap());
}

fn bench_generators() {
    println!("\n# generators");
    bench("generators/uniform_50k", || {
        outerspace::gen::uniform::matrix(32_768, 32_768, 50_000, 7)
    });
    bench("generators/rmat_25k", || outerspace::gen::rmat::graph500(32_768, 25_000, 7));
    bench("generators/powerlaw_50k", || {
        outerspace::gen::powerlaw::graph(32_768, 50_000, 7)
    });
}

fn main() {
    // `cargo bench` passes harness flags such as `--bench`; ignore them.
    bench_spgemm_algorithms();
    bench_density_sweep();
    bench_spmv();
    bench_conversion();
    bench_simulator();
    bench_generators();
}
