//! Criterion micro-benchmarks of the software kernels: the outer-product
//! phases, the baseline SpGEMMs, SpMV variants, and format conversion.
//!
//! These complement the per-figure binaries (which print the paper's
//! tables): criterion gives statistically robust relative numbers for the
//! software implementations themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use outerspace::outer::{self, MergeKind};
use outerspace::prelude::*;

fn fixture(n: u32, nnz: usize, seed: u64) -> (Csr, Csr) {
    (
        outerspace::gen::uniform::matrix(n, n, nnz, seed),
        outerspace::gen::uniform::matrix(n, n, nnz, seed + 1),
    )
}

fn bench_spgemm_algorithms(c: &mut Criterion) {
    let (a, b) = fixture(1024, 16_000, 1);
    let a_csc = a.to_csc();
    let mut g = c.benchmark_group("spgemm");
    g.bench_function("outer_sequential", |bench| {
        bench.iter(|| outer::spgemm(&a, &b).unwrap())
    });
    g.bench_function("outer_parallel_4", |bench| {
        bench.iter(|| outer::spgemm_parallel(&a, &b, 4).unwrap())
    });
    g.bench_function("gustavson", |bench| {
        bench.iter(|| outerspace::baselines::gustavson::spgemm(&a, &b).unwrap())
    });
    g.bench_function("hash", |bench| {
        bench.iter(|| outerspace::baselines::hash::spgemm(&a, &b).unwrap())
    });
    g.bench_function("esc", |bench| {
        bench.iter(|| outerspace::baselines::esc::spgemm(&a, &b).unwrap())
    });
    g.bench_function("reference", |bench| {
        bench.iter(|| outerspace::sparse::ops::spgemm_reference(&a, &b).unwrap())
    });
    drop(g);

    // Phases in isolation.
    let mut g = c.benchmark_group("outer_phases");
    g.bench_function("multiply", |bench| {
        bench.iter(|| outer::multiply(&a_csc, &b).unwrap())
    });
    g.bench_function("merge_streaming", |bench| {
        bench.iter_batched(
            || outer::multiply(&a_csc, &b).unwrap().0,
            |pp| outer::merge(pp, MergeKind::Streaming),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("merge_sort_based", |bench| {
        bench.iter_batched(
            || outer::multiply(&a_csc, &b).unwrap().0,
            |pp| outer::merge(pp, MergeKind::SortBased),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_density_sweep(c: &mut Criterion) {
    // Fig. 3's regime: fixed nnz, growing dimension.
    let mut g = c.benchmark_group("density_sweep_outer");
    for n in [1024u32, 4096] {
        let (a, b) = fixture(n, 16_000, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| outer::spgemm(&a, &b).unwrap())
        });
    }
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let a = outerspace::gen::uniform::matrix(8_192, 8_192, 80_000, 3);
    let a_cc = a.to_csc();
    let mut g = c.benchmark_group("spmv");
    for r in [0.01f64, 0.1, 1.0] {
        let x = outerspace::gen::vector::sparse(8_192, r, 4);
        g.bench_with_input(BenchmarkId::new("outer", r), &x, |bench, x| {
            bench.iter(|| outer::spmv(&a_cc, x).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("mkl_analog", r), &x, |bench, x| {
            bench.iter(|| outerspace::baselines::spmv::spmv_dense_vector(&a, x).unwrap())
        });
    }
    g.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let a = outerspace::gen::uniform::matrix(4096, 4096, 80_000, 5);
    let mut g = c.benchmark_group("format_conversion");
    g.bench_function("csr_to_csc_via_outer", |bench| {
        bench.iter(|| outer::csr_to_csc_via_outer(&a))
    });
    g.bench_function("csr_to_csc_direct", |bench| bench.iter(|| a.to_csc()));
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    // Simulator throughput itself (not simulated time): how fast the model
    // processes a small workload.
    let a = outerspace::gen::uniform::matrix(1024, 1024, 12_000, 6);
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    c.bench_function("simulator_spgemm_1k", |bench| {
        bench.iter(|| sim.spgemm(&a, &a).unwrap())
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.bench_function("uniform_50k", |bench| {
        bench.iter(|| outerspace::gen::uniform::matrix(32_768, 32_768, 50_000, 7))
    });
    g.bench_function("rmat_25k", |bench| {
        bench.iter(|| outerspace::gen::rmat::graph500(32_768, 25_000, 7))
    });
    g.bench_function("powerlaw_50k", |bench| {
        bench.iter(|| outerspace::gen::powerlaw::graph(32_768, 50_000, 7))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_spgemm_algorithms, bench_density_sweep, bench_spmv,
              bench_conversion, bench_simulator, bench_generators
}
criterion_main!(benches);
