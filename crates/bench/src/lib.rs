//! Shared harness for the per-figure/per-table benchmark binaries.
//!
//! Every binary regenerates one artifact of the paper's evaluation section
//! (see DESIGN.md's experiment index) and prints the same rows/series the
//! paper reports, plus a JSON dump under `bench_results/` for
//! EXPERIMENTS.md. Absolute numbers are not expected to match the authors'
//! testbed — the *shape* (who wins, by what factor, where crossovers fall)
//! is the reproduction target.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

use outerspace::prelude::*;
use outerspace::sim::xmodels::{gpu::row_imbalance, CpuModel, GpuModel};

/// Command-line options shared by all harness binaries.
///
/// * `--scale N` — divide workload dimensions/non-zeros by `N` (default
///   chosen per binary so a full run takes minutes).
/// * `--full` — run at the paper's original sizes (`scale = 1`).
/// * `--seed N` — change the workload seed.
/// * `--out DIR` — where JSON results go (default `bench_results/`).
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Workload divisor.
    pub scale: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for JSON dumps.
    pub out_dir: PathBuf,
}

impl HarnessOpts {
    /// Parses `std::env::args`, with `default_scale` when `--scale`/`--full`
    /// are absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args(default_scale: u32) -> Self {
        let mut scale = default_scale;
        let mut seed = 42u64;
        let mut out_dir = PathBuf::from("bench_results");
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a positive integer"));
                }
                "--full" => scale = 1,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--out" => {
                    out_dir = args
                        .next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| panic!("--out needs a directory"));
                }
                "--table4" => {} // handled by fig07 via args().any()
                other => panic!("unknown argument '{other}' (try --scale N | --full | --seed N | --out DIR)"),
            }
        }
        HarnessOpts { scale: scale.max(1), seed, out_dir }
    }

    /// Writes `value` as pretty JSON to `<out>/<name>.json` (best effort:
    /// failures are reported to stderr, not fatal).
    pub fn dump_json<T: outerspace_json::ToJson>(&self, name: &str, value: &T) {
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.json"));
        let json = value.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("(results written to {})", path.display());
        }
    }
}

/// All baseline timings for one SpGEMM workload (`C = A × A`).
#[derive(Debug, Clone)]
pub struct BaselineTimes {
    /// Host wall-clock of the Gustavson (MKL-analog) kernel, seconds.
    pub mkl_host_s: f64,
    /// Xeon model prediction for MKL, seconds.
    pub mkl_model_s: f64,
    /// K40 model prediction for cuSPARSE (row-hash), seconds.
    pub cusparse_model_s: f64,
    /// K40 model prediction for CUSP (ESC), seconds.
    pub cusp_model_s: f64,
    /// Useful flops of the product (2 × elementary products).
    pub flops: u64,
}

outerspace_json::impl_to_json!(BaselineTimes {
    mkl_host_s,
    mkl_model_s,
    cusparse_model_s,
    cusp_model_s,
    flops,
});

/// Runs every baseline for `C = A × A` and returns their timings.
///
/// # Panics
///
/// Panics if any kernel fails (shape errors cannot occur for square `A`).
pub fn run_baselines(a: &Csr) -> BaselineTimes {
    let profile = outerspace::sparse::stats::profile(a);
    let t0 = Instant::now();
    let (_, gus) = outerspace::baselines::gustavson::spgemm_parallel(a, a, 6)
        .expect("square operands");
    let mkl_host_s = t0.elapsed().as_secs_f64();
    let cpu = CpuModel::xeon_e5_1650_v4();
    let mkl_model_s = cpu.spgemm_seconds(
        &gus,
        12 * a.nnz() as u64,
        a.ncols() as u64,
        a.nrows() as u64,
        profile.diagonal_fraction,
    );
    let k40 = GpuModel::tesla_k40();
    let (_, hash) = outerspace::baselines::hash::spgemm(a, a).expect("square operands");
    let cusparse_model_s =
        k40.cusparse_time(&hash, a.nrows() as u64, row_imbalance(a, a)).total();
    let (_, esc) = outerspace::baselines::esc::spgemm(a, a).expect("square operands");
    let cusp_model_s = k40.cusp_time(&esc, a.nrows() as u64).total();
    BaselineTimes {
        mkl_host_s,
        mkl_model_s,
        cusparse_model_s,
        cusp_model_s,
        flops: gus.flops(),
    }
}

/// Simulates OuterSPACE for `C = A × A`, returning the report.
///
/// # Panics
///
/// Panics on simulation failure (cannot occur for a valid square `A`).
pub fn run_outerspace(a: &Csr) -> SimReport {
    let sim = Simulator::new(OuterSpaceConfig::default()).expect("default config");
    sim.spgemm(a, a).expect("square operands").1
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Measures this host's sustainable memory bandwidth with a STREAM-triad
/// style probe (used by the Table 1 reproduction as the "peak" reference).
pub fn host_peak_bandwidth_bytes_per_s() -> f64 {
    const N: usize = 8 * 1024 * 1024; // 3 x 64 MB working set
    let a = vec![1.0f64; N];
    let b = vec![2.0f64; N];
    let mut c = vec![0.0f64; N];
    // Warm-up + 3 timed passes, best of.
    let mut best = f64::MAX;
    for _ in 0..4 {
        let t = Instant::now();
        for i in 0..N {
            c[i] = a[i] + 3.0 * b[i];
        }
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        std::hint::black_box(&c);
    }
    (3 * N * 8) as f64 / best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2.5 us");
    }

    #[test]
    fn baselines_run_on_small_input() {
        let a = outerspace::gen::uniform::matrix(64, 64, 400, 1);
        let b = run_baselines(&a);
        assert!(b.mkl_host_s > 0.0);
        assert!(b.mkl_model_s > 0.0);
        assert!(b.cusparse_model_s > 0.0);
        assert!(b.cusp_model_s > 0.0);
        assert!(b.flops > 0);
        let rep = run_outerspace(&a);
        assert!(rep.seconds() > 0.0);
    }
}
