//! Shared harness for the per-figure/per-table benchmark binaries.
//!
//! Every binary regenerates one artifact of the paper's evaluation section
//! (see DESIGN.md's experiment index) and prints the same rows/series the
//! paper reports, plus a JSON dump under `bench_results/` for
//! EXPERIMENTS.md. Absolute numbers are not expected to match the authors'
//! testbed — the *shape* (who wins, by what factor, where crossovers fall)
//! is the reproduction target.
//!
//! The harness bodies live in [`harnesses`] (one module per figure/table) so
//! the `runall` driver can run them in-process; each executes its cases
//! through the crash-safe, resumable [`runner`] layer.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

use outerspace::prelude::*;
use outerspace::sim::xmodels::{gpu::row_imbalance, CpuModel, GpuModel};

pub mod harnesses;
pub mod runner;

/// Per-binary defaults applied when the corresponding flag is absent.
#[derive(Debug, Clone, Copy)]
pub struct HarnessDefaults {
    /// Default workload divisor (`--scale`).
    pub scale: u32,
    /// Default per-case watchdog budget in seconds (`--max-case-secs`).
    pub max_case_secs: f64,
}

/// A malformed command line, reported on stderr with exit code 2 (the
/// conventional usage-error status) instead of a panic + exit 101.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for UsageError {}

fn usage_error(message: impl Into<String>) -> UsageError {
    UsageError { message: message.into() }
}

/// One-line flag summary printed beneath a [`UsageError`].
pub const USAGE: &str = "usage: <harness> [--scale N] [--full] [--seed N] [--out DIR] \
     [--resume] [--max-case-secs S] [--table4]";

/// Command-line options shared by all harness binaries.
///
/// * `--scale N` — divide workload dimensions/non-zeros by `N` (default
///   chosen per binary so a full run takes minutes).
/// * `--full` — run at the paper's original sizes (`scale = 1`, suite caps
///   disabled).
/// * `--seed N` — change the workload seed.
/// * `--out DIR` — where JSON results go (default `bench_results/`).
/// * `--resume` — skip cases already checkpointed in `<out>/<name>.partial.json`
///   (or a previous final dump); failed cases are retried.
/// * `--max-case-secs S` — per-case wall-clock watchdog (fractional seconds
///   accepted; `0` disables it). Default is per-binary.
/// * `--table4` — print the suite inventory instead of running
///   (`fig07_suite_speedups` only; accepted and ignored elsewhere).
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Workload divisor.
    pub scale: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for JSON dumps.
    pub out_dir: PathBuf,
    /// `--full`: paper-sized workloads, per-matrix suite caps disabled.
    pub full: bool,
    /// `--table4`: print the Table 4 suite inventory instead of running.
    pub table4: bool,
    /// `--resume`: skip checkpointed cases, retry failed ones.
    pub resume: bool,
    /// Per-case watchdog budget in seconds; `<= 0` disables the watchdog.
    pub max_case_secs: f64,
}

impl HarnessOpts {
    /// Parses an argument list (without the program name). Returns a typed
    /// [`UsageError`] on malformed input — callers decide whether to exit.
    pub fn parse<I>(args: I, defaults: HarnessDefaults) -> Result<Self, UsageError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut opts = HarnessOpts {
            scale: defaults.scale,
            seed: 42,
            out_dir: PathBuf::from("bench_results"),
            full: false,
            table4: false,
            resume: false,
            max_case_secs: defaults.max_case_secs,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args
                        .next()
                        .ok_or_else(|| usage_error("--scale needs a positive integer"))?;
                    opts.scale = v.parse().map_err(|_| {
                        usage_error(format!("--scale: '{v}' is not a positive integer"))
                    })?;
                    if opts.scale == 0 {
                        return Err(usage_error(
                            "--scale must be at least 1 (1 = the paper's full size; \
                             larger values shrink the workload)",
                        ));
                    }
                }
                "--full" => {
                    opts.full = true;
                    opts.scale = 1;
                }
                "--seed" => {
                    let v = args.next().ok_or_else(|| usage_error("--seed needs an integer"))?;
                    opts.seed = v
                        .parse()
                        .map_err(|_| usage_error(format!("--seed: '{v}' is not an integer")))?;
                }
                "--out" => {
                    let v = args.next().ok_or_else(|| usage_error("--out needs a directory"))?;
                    opts.out_dir = PathBuf::from(v);
                }
                "--resume" => opts.resume = true,
                "--max-case-secs" => {
                    let v = args
                        .next()
                        .ok_or_else(|| usage_error("--max-case-secs needs a number of seconds"))?;
                    let secs: f64 = v.parse().map_err(|_| {
                        usage_error(format!("--max-case-secs: '{v}' is not a number"))
                    })?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(usage_error(
                            "--max-case-secs must be a non-negative number (0 disables the watchdog)",
                        ));
                    }
                    opts.max_case_secs = secs;
                }
                "--table4" => opts.table4 = true,
                other => {
                    return Err(usage_error(format!("unknown argument '{other}'")));
                }
            }
        }
        Ok(opts)
    }

    /// Parses `std::env::args`; on a malformed command line prints the error
    /// plus usage to stderr and exits with status 2.
    pub fn from_args(defaults: HarnessDefaults) -> Self {
        match Self::parse(std::env::args().skip(1), defaults) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
}

/// All baseline timings for one SpGEMM workload (`C = A × A`).
#[derive(Debug, Clone)]
pub struct BaselineTimes {
    /// Host wall-clock of the Gustavson (MKL-analog) kernel, seconds.
    pub mkl_host_s: f64,
    /// Xeon model prediction for MKL, seconds.
    pub mkl_model_s: f64,
    /// K40 model prediction for cuSPARSE (row-hash), seconds.
    pub cusparse_model_s: f64,
    /// K40 model prediction for CUSP (ESC), seconds.
    pub cusp_model_s: f64,
    /// Useful flops of the product (2 × elementary products).
    pub flops: u64,
}

outerspace_json::impl_to_json!(BaselineTimes {
    mkl_host_s,
    mkl_model_s,
    cusparse_model_s,
    cusp_model_s,
    flops,
});

/// Runs every baseline for `C = A × A` and returns their timings.
///
/// # Panics
///
/// Panics if any kernel fails (shape errors cannot occur for square `A`).
pub fn run_baselines(a: &Csr) -> BaselineTimes {
    let profile = outerspace::sparse::stats::profile(a);
    let t0 = Instant::now();
    let (_, gus) = outerspace::baselines::gustavson::spgemm_parallel(a, a, 6)
        .expect("square operands");
    let mkl_host_s = t0.elapsed().as_secs_f64();
    let cpu = CpuModel::xeon_e5_1650_v4();
    let mkl_model_s = cpu.spgemm_seconds(
        &gus,
        12 * a.nnz() as u64,
        a.ncols() as u64,
        a.nrows() as u64,
        profile.diagonal_fraction,
    );
    let k40 = GpuModel::tesla_k40();
    let (_, hash) = outerspace::baselines::hash::spgemm(a, a).expect("square operands");
    let cusparse_model_s =
        k40.cusparse_time(&hash, a.nrows() as u64, row_imbalance(a, a)).total();
    let (_, esc) = outerspace::baselines::esc::spgemm(a, a).expect("square operands");
    let cusp_model_s = k40.cusp_time(&esc, a.nrows() as u64).total();
    BaselineTimes {
        mkl_host_s,
        mkl_model_s,
        cusparse_model_s,
        cusp_model_s,
        flops: gus.flops(),
    }
}

/// Simulates OuterSPACE for `C = A × A`, returning the report.
///
/// # Panics
///
/// Panics on simulation failure (cannot occur for a valid square `A`).
pub fn run_outerspace(a: &Csr) -> SimReport {
    let sim = Simulator::new(OuterSpaceConfig::default()).expect("default config");
    sim.spgemm(a, a).expect("square operands").1
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Measures this host's sustainable memory bandwidth with a STREAM-triad
/// style probe (used by the Table 1 reproduction as the "peak" reference).
pub fn host_peak_bandwidth_bytes_per_s() -> f64 {
    const N: usize = 8 * 1024 * 1024; // 3 x 64 MB working set
    let a = vec![1.0f64; N];
    let b = vec![2.0f64; N];
    let mut c = vec![0.0f64; N];
    // Warm-up + 3 timed passes, best of.
    let mut best = f64::MAX;
    for _ in 0..4 {
        let t = Instant::now();
        for i in 0..N {
            c[i] = a[i] + 3.0 * b[i];
        }
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        std::hint::black_box(&c);
    }
    (3 * N * 8) as f64 / best
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 8, max_case_secs: 300.0 };

    fn parse(args: &[&str]) -> Result<HarnessOpts, UsageError> {
        HarnessOpts::parse(args.iter().map(|s| s.to_string()), DEFAULTS)
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2.5 us");
    }

    #[test]
    fn parse_defaults_and_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, 8);
        assert_eq!(o.seed, 42);
        assert!(!o.resume && !o.full && !o.table4);
        assert_eq!(o.max_case_secs, 300.0);

        let o = parse(&[
            "--scale", "3", "--seed", "7", "--out", "x", "--resume", "--max-case-secs", "1.5",
        ])
        .unwrap();
        assert_eq!((o.scale, o.seed), (3, 7));
        assert_eq!(o.out_dir, PathBuf::from("x"));
        assert!(o.resume);
        assert_eq!(o.max_case_secs, 1.5);

        let o = parse(&["--full", "--table4"]).unwrap();
        assert!(o.full && o.table4);
        assert_eq!(o.scale, 1);
    }

    #[test]
    fn parse_rejects_malformed_arguments_with_typed_errors() {
        for bad in [
            vec!["--scale"],
            vec!["--scale", "zero"],
            vec!["--scale", "0"],
            vec!["--seed", "4x"],
            vec!["--out"],
            vec!["--max-case-secs", "-1"],
            vec!["--max-case-secs", "soon"],
            vec!["--frobnicate"],
        ] {
            let err = parse(&bad).expect_err(&format!("accepted {bad:?}"));
            assert!(!err.message.is_empty());
        }
        // --scale 0 carries the specific guidance.
        let err = parse(&["--scale", "0"]).unwrap_err();
        assert!(err.message.contains("at least 1"), "{}", err.message);
    }

    #[test]
    fn baselines_run_on_small_input() {
        let a = outerspace::gen::uniform::matrix(64, 64, 400, 1);
        let b = run_baselines(&a);
        assert!(b.mkl_host_s > 0.0);
        assert!(b.mkl_model_s > 0.0);
        assert!(b.cusparse_model_s > 0.0);
        assert!(b.cusp_model_s > 0.0);
        assert!(b.flops > 0);
        let rep = run_outerspace(&a);
        assert!(rep.seconds() > 0.0);
    }
}
