//! Raw-speed microbenchmarks over the software SpGEMM kernels, with an
//! append-only perf trajectory and a pinned regression gate.
//!
//! Unlike the figure harnesses (which reproduce the paper's *relative*
//! results), this harness watches the absolute speed of the `outer` and
//! `baselines` hot paths that `ospace serve` executes per request: the
//! multiply phase (chunk-list vs arena), the merge phase (streaming vs
//! sort vs cache-blocked, timed in isolation on a once-built arena
//! intermediate), and the end-to-end SpGEMM drivers. Each kernel ×
//! workload cell is timed with warmup, repetition, and median-of-k
//! reporting.
//!
//! Every run appends one entry to `<out>/BENCH_kernels.json` (JSONL via
//! [`outerspace_json::dump::append_jsonl`], so concurrent/interrupted
//! writers cannot corrupt the history). [`check`] compares a fresh
//! measurement of the *pinned* cells against the latest trajectory entry
//! and fails on a >5% median regression — the `ci.sh` perf gate. To re-pin
//! after an intentional perf change, re-run the harness (a new entry
//! becomes the baseline) or run the gate with `BENCH_PIN=1`, mirroring the
//! simulator's `GOLDEN_CAPTURE=1` convention.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use outerspace::outer::{
    merge_arena, multiply, multiply_arena, spgemm_arena, spgemm_arena_parallel,
    spgemm_blocked, spgemm_with_stats, ArenaProducts, MergeKind,
};
use outerspace::prelude::*;

use crate::runner::{git_rev, CaseResult, Runner};
use crate::{fmt_secs, HarnessDefaults, HarnessOpts};
use outerspace_json::{dump, Json, ToJson};

/// Artifact basename.
pub const NAME: &str = "kernels";
/// Per-binary defaults. The default scale doubles as the smoke/pin scale:
/// trajectory entries are only comparable at equal `(scale, seed)`, so CI
/// and the committed baseline use the same cell sizes.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 8, max_case_secs: 600.0 };

/// Timed repetitions per cell; the reported time is their median.
const REPS: usize = 7;
/// Untimed warmup repetitions per cell (page-faults the inputs, warms
/// caches and the branch predictor).
const WARMUP: usize = 2;
/// Threads for the parallel cells (matches `serve`'s worker parallelism).
const THREADS: usize = 4;

/// A pinned cell regresses when the fresh median exceeds the baseline by
/// this factor **and** by [`ABS_SLACK_S`] — the relative gate from the
/// issue plus an absolute floor so micro-jitter on sub-millisecond noise
/// cannot trip CI.
const REL_TOL: f64 = 1.05;
/// Absolute regression floor in seconds.
const ABS_SLACK_S: f64 = 0.5e-3;

/// Cells the [`check`] gate compares (substring-free exact names). Chosen
/// to cover both tentpole fast paths plus the end-to-end drivers, on the
/// workloads where they run ≥ a few milliseconds at the default scale, so
/// the 5% gate is meaningful.
pub const PINNED_CELLS: &[&str] = &[
    "uniform/multiply_arena",
    "uniform/merge_blocked",
    "uniform/spgemm_outer_blocked",
    "uniform/spgemm_outer_streaming",
    "rmat/spgemm_outer_ws_par",
];

/// Trajectory file name under `--out`.
pub const TRAJECTORY_FILE: &str = "BENCH_kernels.json";

/// One timed kernel × workload cell.
struct CellRow {
    cell: String,
    workload: String,
    kernel: String,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    reps: u64,
    pinned: bool,
}

outerspace_json::impl_to_json!(CellRow {
    cell,
    workload,
    kernel,
    median_s,
    min_s,
    max_s,
    reps,
    pinned,
});

/// Times a fixed, repo-independent arithmetic loop — a probe of current
/// machine speed. Trajectory entries record the probe alongside the cell
/// medians; the gate compares *calibrated* ratios
/// (`fresh/probe_now : base/probe_then`), which cancels machine-wide
/// slowdowns (CPU contention, frequency scaling — this may be a busy
/// one-core box) while staying sensitive to per-kernel code regressions.
fn machine_probe() -> f64 {
    let (median, ..) = measure(&|| {
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut acc: u64 = 0;
        for _ in 0..8_000_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        std::hint::black_box(acc);
    });
    median
}

/// Times `body` with warmup + repetition; returns `(median, min, max)`.
fn measure(body: &dyn Fn()) -> (f64, f64, f64) {
    for _ in 0..WARMUP {
        body();
    }
    let mut times = [0.0f64; REPS];
    for t in &mut times {
        let t0 = Instant::now();
        body();
        *t = t0.elapsed().as_secs_f64();
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (times[REPS / 2], times[0], times[REPS - 1])
}

/// One benchmarkable kernel closure, tagged with its cell coordinates.
struct CellSpec {
    workload: &'static str,
    kernel: &'static str,
    body: Box<dyn Fn() + Send + Sync>,
}

impl CellSpec {
    fn name(&self) -> String {
        format!("{}/{}", self.workload, self.kernel)
    }
}

/// The generator workloads. `uniform` is the regular-sparsity anchor,
/// `rmat` stresses skew (hub rows → huge chunks), `banded` stresses
/// many-small-chunk merges with near-total collision overlap.
fn workloads(opts: &HarnessOpts) -> Vec<(&'static str, Csr, Csr)> {
    let seed = opts.seed;
    let n_uni = (4096 / opts.scale).max(64);
    let n_rmat = (2048 / opts.scale).max(64);
    let n_band = (4096 / opts.scale).max(64);
    vec![
        (
            "uniform",
            outerspace::gen::uniform::matrix(n_uni, n_uni, 48 * n_uni as usize, seed),
            outerspace::gen::uniform::matrix(n_uni, n_uni, 48 * n_uni as usize, seed + 1),
        ),
        (
            "rmat",
            outerspace::gen::rmat::graph500(n_rmat, 24 * n_rmat as usize, seed),
            outerspace::gen::rmat::graph500(n_rmat, 24 * n_rmat as usize, seed + 1),
        ),
        (
            "banded",
            outerspace::gen::banded::circulant(n_band, 17, seed),
            outerspace::gen::banded::circulant(n_band, 17, seed + 1),
        ),
    ]
}

/// Builds every kernel × workload cell. Multiply cells time the phase from
/// the pre-converted CC operand; merge cells time the phase alone against
/// a pre-built arena intermediate (setup excluded from the timed region);
/// spgemm cells time the full driver including conversion.
fn build_cells(opts: &HarnessOpts) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for (workload, a, b) in workloads(opts) {
        let a = Arc::new(a);
        let b = Arc::new(b);
        let a_cc: Arc<Csc> = Arc::new(a.to_csc());
        let (ap, _) = multiply_arena(&a_cc, &b).expect("square operands");
        let ap = Arc::new(ap);

        let spec = |kernel: &'static str, body: Box<dyn Fn() + Send + Sync>| CellSpec {
            workload,
            kernel,
            body,
        };
        let (ac, bb) = (a_cc.clone(), b.clone());
        cells.push(spec(
            "multiply_chunklist",
            Box::new(move || {
                std::hint::black_box(multiply(&ac, &bb).expect("square operands"));
            }),
        ));
        let (ac, bb) = (a_cc.clone(), b.clone());
        cells.push(spec(
            "multiply_arena",
            Box::new(move || {
                std::hint::black_box(multiply_arena(&ac, &bb).expect("square operands"));
            }),
        ));
        for (kernel, kind) in [
            ("merge_streaming", MergeKind::Streaming),
            ("merge_sort", MergeKind::SortBased),
            ("merge_blocked", MergeKind::Blocked),
        ] {
            let ap: Arc<ArenaProducts> = ap.clone();
            cells.push(spec(
                kernel,
                Box::new(move || {
                    std::hint::black_box(merge_arena(&ap, kind));
                }),
            ));
        }
        let (aa, bb) = (a.clone(), b.clone());
        cells.push(spec(
            "spgemm_outer_streaming",
            Box::new(move || {
                std::hint::black_box(
                    spgemm_with_stats(&aa, &bb, MergeKind::Streaming).expect("square"),
                );
            }),
        ));
        let (aa, bb) = (a.clone(), b.clone());
        cells.push(spec(
            "spgemm_outer_arena",
            Box::new(move || {
                std::hint::black_box(
                    spgemm_arena(&aa, &bb, MergeKind::Streaming).expect("square"),
                );
            }),
        ));
        let (aa, bb) = (a.clone(), b.clone());
        cells.push(spec(
            "spgemm_outer_blocked",
            Box::new(move || {
                std::hint::black_box(spgemm_blocked(&aa, &bb).expect("square"));
            }),
        ));
        let (aa, bb) = (a.clone(), b.clone());
        cells.push(spec(
            "spgemm_outer_ws_par",
            Box::new(move || {
                std::hint::black_box(spgemm_arena_parallel(&aa, &bb, THREADS).expect("square"));
            }),
        ));
        let (aa, bb) = (a.clone(), b.clone());
        cells.push(spec(
            "spgemm_gustavson",
            Box::new(move || {
                std::hint::black_box(
                    outerspace::baselines::gustavson::spgemm(&aa, &bb).expect("square"),
                );
            }),
        ));
    }
    cells
}

fn median_of(rows: &[CellRow], cell: &str) -> Option<f64> {
    rows.iter().find(|r| r.cell == cell).map(|r| r.median_s)
}

/// Per-workload speedup ratios of each fast path over its predecessor.
fn speedups(rows: &[CellRow]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for workload in ["uniform", "rmat", "banded"] {
        if let (Some(base), Some(fast)) = (
            median_of(rows, &format!("{workload}/multiply_chunklist")),
            median_of(rows, &format!("{workload}/multiply_arena")),
        ) {
            out.push((format!("multiply_arena_vs_chunklist/{workload}"), base / fast));
        }
        if let (Some(base), Some(fast)) = (
            median_of(rows, &format!("{workload}/merge_streaming")),
            median_of(rows, &format!("{workload}/merge_blocked")),
        ) {
            out.push((format!("merge_blocked_vs_streaming/{workload}"), base / fast));
        }
    }
    out
}

/// Serializes one trajectory entry. `probe_s` is the machine-speed probe
/// measured in the same session as `rows`.
fn trajectory_entry(opts: &HarnessOpts, rows: &[CellRow], repin: bool, probe_s: f64) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::UInt(1)),
        ("kind".into(), Json::Str("kernels-perf".into())),
        ("git_rev".into(), Json::Str(git_rev())),
        ("seed".into(), Json::UInt(opts.seed)),
        ("scale".into(), Json::UInt(opts.scale as u64)),
        ("threads".into(), Json::UInt(THREADS as u64)),
        ("repin".into(), Json::Bool(repin)),
        ("machine_probe_s".into(), Json::Float(probe_s)),
        ("cells".into(), Json::Arr(rows.iter().map(|r| r.to_json()).collect())),
        (
            "speedups".into(),
            Json::Obj(
                speedups(rows).into_iter().map(|(k, v)| (k, Json::Float(v))).collect(),
            ),
        ),
    ])
}

fn trajectory_path(opts: &HarnessOpts) -> std::path::PathBuf {
    opts.out_dir.join(TRAJECTORY_FILE)
}

/// Runs every cell through the crash-safe runner, prints the table and the
/// fast-path speedups, and appends one entry to the perf trajectory.
pub fn run(opts: &HarnessOpts) -> crate::runner::RunSummary {
    let mut runner = Runner::new(NAME, opts);
    println!(
        "# software-kernel raw speed: median of {REPS} reps after {WARMUP} warmups, \
         scale {}, seed {}",
        opts.scale, opts.seed
    );
    println!("{:<32} {:>10} {:>10} {:>10} {:>7}", "cell", "median", "min", "max", "pinned");
    let mut rows: Vec<CellRow> = Vec::new();
    for cell in build_cells(opts) {
        let name = cell.name();
        let pinned = PINNED_CELLS.contains(&name.as_str());
        let value = runner.run_case(&name, move || -> CaseResult<CellRow> {
            let (median_s, min_s, max_s) = measure(&*cell.body);
            let row = CellRow {
                cell: cell.name(),
                workload: cell.workload.to_string(),
                kernel: cell.kernel.to_string(),
                median_s,
                min_s,
                max_s,
                reps: REPS as u64,
                pinned,
            };
            println!(
                "{:<32} {:>10} {:>10} {:>10} {:>7}",
                row.cell,
                fmt_secs(row.median_s),
                fmt_secs(row.min_s),
                fmt_secs(row.max_s),
                if row.pinned { "yes" } else { "" }
            );
            Ok(row)
        });
        // Re-materialize the row from the runner's Json so `--resume`d
        // (cached) cases still contribute to speedups and the trajectory.
        if let Some(row) = value.as_ref().and_then(row_from_json) {
            rows.push(row);
        }
    }

    println!("\n# fast-path speedups (median ratio, >1.0 = fast path wins)");
    for (name, ratio) in speedups(&rows) {
        println!("{name:<44} {ratio:>6.2}x");
    }

    if rows.is_empty() {
        eprintln!("# {NAME}: no completed cells; trajectory entry not appended");
    } else {
        let path = trajectory_path(opts);
        match dump::append_jsonl(&path, &trajectory_entry(opts, &rows, false, machine_probe())) {
            Ok(()) => println!("\n# trajectory entry appended to {}", path.display()),
            Err(e) => eprintln!("# {NAME}: could not append trajectory entry: {e}"),
        }
    }
    runner.finalize()
}

fn row_from_json(j: &Json) -> Option<CellRow> {
    Some(CellRow {
        cell: j.get("cell")?.as_str()?.to_string(),
        workload: j.get("workload")?.as_str()?.to_string(),
        kernel: j.get("kernel")?.as_str()?.to_string(),
        median_s: j.get("median_s")?.as_f64()?,
        min_s: j.get("min_s").and_then(Json::as_f64).unwrap_or(0.0),
        max_s: j.get("max_s").and_then(Json::as_f64).unwrap_or(0.0),
        reps: j.get("reps").and_then(Json::as_u64).unwrap_or(REPS as u64),
        pinned: matches!(j.get("pinned"), Some(Json::Bool(true))),
    })
}

/// Reads the latest trajectory entry compatible with `opts` (same scale
/// and seed). `Ok(None)` when there is no comparable baseline.
fn latest_baseline(opts: &HarnessOpts) -> Result<Option<Json>, String> {
    let path = trajectory_path(opts);
    if !Path::new(&path).exists() {
        return Ok(None);
    }
    let entries = dump::read_jsonl(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(entries
        .into_iter()
        .rev()
        .find(|e| {
            e.get("scale").and_then(Json::as_u64) == Some(opts.scale as u64)
                && e.get("seed").and_then(Json::as_u64) == Some(opts.seed)
        }))
}

/// Parses `BENCH_INJECT_SLOWDOWN=<cell>:<factor>` — a synthetic slowdown
/// multiplied into the fresh median of the matching cell(s), used by CI to
/// prove the gate actually fails on regressions.
fn injected_slowdown() -> Option<(String, f64)> {
    let spec = std::env::var("BENCH_INJECT_SLOWDOWN").ok()?;
    let (cell, factor) = spec.rsplit_once(':')?;
    let factor: f64 = factor.parse().ok()?;
    Some((cell.to_string(), factor))
}

/// True when `fresh` counts as a regression against `base`.
fn regressed(fresh: f64, base: f64) -> bool {
    fresh > base * REL_TOL && (fresh - base) > ABS_SLACK_S
}

/// Measures one cell's gated median, applying any injected slowdown.
fn gated_median(cell: &CellSpec, inject: &Option<(String, f64)>) -> (f64, f64, f64) {
    let (mut median_s, mut min_s, mut max_s) = measure(&*cell.body);
    if let Some((pattern, factor)) = inject {
        if cell.name().contains(pattern.as_str()) {
            median_s *= factor;
            min_s *= factor;
            max_s *= factor;
        }
    }
    (median_s, min_s, max_s)
}

/// The perf-trajectory regression gate (`kernels_bench --check`).
///
/// Freshly measures the pinned cells, compares each against the latest
/// comparable trajectory entry, and returns a non-zero exit code if any
/// pinned cell's median regressed by more than [`REL_TOL`] (and
/// [`ABS_SLACK_S`]). Scheduler noise on shared machines is bursty, so a
/// suspect cell is re-measured up to [`CONFIRM_ATTEMPTS`] times and fails
/// only if every attempt regresses — a real slowdown persists, a noise
/// spike does not. Without a comparable baseline the gate passes with a
/// note — a fresh checkout must not fail CI. `BENCH_PIN=1` appends the
/// fresh measurement as a new trajectory entry instead of judging it
/// (the re-pin path after an intentional perf change).
pub fn check(opts: &HarnessOpts) -> i32 {
    /// Total measurement attempts per suspect cell (first + re-measures).
    const CONFIRM_ATTEMPTS: usize = 3;

    let inject = injected_slowdown();
    let pin = std::env::var("BENCH_PIN").is_ok_and(|v| v == "1");
    let cells: Vec<CellSpec> = build_cells(opts)
        .into_iter()
        .filter(|c| PINNED_CELLS.contains(&c.name().as_str()))
        .collect();

    if pin {
        let rows: Vec<CellRow> = cells
            .iter()
            .map(|cell| {
                let (median_s, min_s, max_s) = gated_median(cell, &inject);
                CellRow {
                    cell: cell.name(),
                    workload: cell.workload.to_string(),
                    kernel: cell.kernel.to_string(),
                    median_s,
                    min_s,
                    max_s,
                    reps: REPS as u64,
                    pinned: true,
                }
            })
            .collect();
        let path = trajectory_path(opts);
        return match dump::append_jsonl(&path, &trajectory_entry(opts, &rows, true, machine_probe()))
        {
            Ok(()) => {
                println!("# BENCH_PIN=1: fresh baseline appended to {}", path.display());
                0
            }
            Err(e) => {
                eprintln!("# BENCH_PIN=1: could not append baseline: {e}");
                1
            }
        };
    }

    let baseline = match latest_baseline(opts) {
        Ok(Some(b)) => b,
        Ok(None) => {
            println!(
                "# perf gate: no trajectory entry for scale {} seed {} — nothing to \
                 compare (run the kernels harness once to pin a baseline)",
                opts.scale, opts.seed
            );
            return 0;
        }
        Err(e) => {
            eprintln!("# perf gate: unreadable trajectory ({e})");
            return 1;
        }
    };
    let empty = Vec::new();
    let base_cells = baseline.get("cells").and_then(Json::as_array).unwrap_or(&empty);
    let base_median = |cell: &str| -> Option<f64> {
        base_cells
            .iter()
            .find(|c| c.get("cell").and_then(Json::as_str) == Some(cell))
            .and_then(|c| c.get("median_s").and_then(Json::as_f64))
    };

    // Calibration: scale fresh medians by how fast this machine runs the
    // probe now vs when the baseline was pinned. Clamped so a wild probe
    // reading cannot hide (or invent) a large regression on its own.
    let base_probe = baseline.get("machine_probe_s").and_then(Json::as_f64);
    let speed_ratio = |probe_now: f64| -> f64 {
        match base_probe {
            Some(then) if then > 0.0 && probe_now > 0.0 => (then / probe_now).clamp(0.25, 4.0),
            _ => 1.0,
        }
    };

    println!(
        "# perf gate vs baseline rev {} (>{:.0}% calibrated median regression fails)",
        baseline.get("git_rev").and_then(Json::as_str).unwrap_or("unknown"),
        (REL_TOL - 1.0) * 100.0
    );
    println!(
        "{:<32} {:>10} {:>10} {:>8} {:>9}  status",
        "pinned cell", "baseline", "fresh", "ratio", "attempts"
    );
    let mut regressions = 0;
    for cell in &cells {
        let name = cell.name();
        let (raw, ..) = gated_median(cell, &inject);
        let mut fresh = raw * speed_ratio(machine_probe());
        let Some(base) = base_median(&name) else {
            println!(
                "{:<32} {:>10} {:>10} {:>8} {:>9}  no-baseline",
                name, "-", fmt_secs(fresh), "-", 1
            );
            continue;
        };
        // Best-of-attempts: keep re-measuring while the cell looks slow.
        let mut attempts = 1;
        while regressed(fresh, base) && attempts < CONFIRM_ATTEMPTS {
            let (again, ..) = gated_median(cell, &inject);
            fresh = fresh.min(again * speed_ratio(machine_probe()));
            attempts += 1;
        }
        let is_regressed = regressed(fresh, base);
        if is_regressed {
            regressions += 1;
        }
        println!(
            "{:<32} {:>10} {:>10} {:>7.2}x {:>9}  {}",
            name,
            fmt_secs(base),
            fmt_secs(fresh),
            fresh / base,
            attempts,
            if is_regressed { "REGRESSED" } else { "ok" }
        );
    }
    if regressions > 0 {
        eprintln!(
            "# perf gate: {regressions} pinned cell(s) regressed >{:.0}% — if intentional, \
             re-pin with BENCH_PIN=1 (or re-run the kernels harness) and commit the new \
             trajectory entry",
            (REL_TOL - 1.0) * 100.0
        );
        return 1;
    }
    println!("# perf gate: all pinned cells within tolerance");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts(out: &Path) -> HarnessOpts {
        HarnessOpts {
            scale: 64,
            seed: 42,
            out_dir: out.to_path_buf(),
            full: false,
            table4: false,
            resume: false,
            max_case_secs: 0.0,
        }
    }

    #[test]
    fn pinned_cells_exist_in_the_cell_grid() {
        let out = std::env::temp_dir();
        let opts = tiny_opts(&out);
        let names: Vec<String> = build_cells(&opts).iter().map(CellSpec::name).collect();
        for pinned in PINNED_CELLS {
            assert!(names.iter().any(|n| n == pinned), "pinned cell {pinned} not produced");
        }
    }

    #[test]
    fn check_passes_without_a_baseline_and_fails_after_injection() {
        let dir = std::env::temp_dir().join(format!("kernels_gate_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let opts = tiny_opts(&dir);
        // No trajectory file: the gate must pass with a note.
        assert_eq!(check(&opts), 0);
        // Seed a baseline from a fresh measurement, then verify a clean
        // check passes against it. (Direct measurement, not `run`, keeps
        // this test independent of the runner's thread isolation.)
        let rows: Vec<CellRow> = build_cells(&opts)
            .into_iter()
            .filter(|c| PINNED_CELLS.contains(&c.name().as_str()))
            .map(|c| {
                let (median_s, min_s, max_s) = measure(&*c.body);
                CellRow {
                    cell: c.name(),
                    workload: c.workload.to_string(),
                    kernel: c.kernel.to_string(),
                    // Generous baseline so scheduler jitter cannot flake CI.
                    median_s: median_s * 100.0,
                    min_s,
                    max_s,
                    reps: REPS as u64,
                    pinned: true,
                }
            })
            .collect();
        dump::append_jsonl(
            &trajectory_path(&opts),
            &trajectory_entry(&opts, &rows, false, machine_probe()),
        )
        .unwrap();
        assert_eq!(check(&opts), 0, "clean tree must pass the gate");
        // A synthetic slowdown far beyond the inflated baseline must fail.
        std::env::set_var("BENCH_INJECT_SLOWDOWN", "multiply_arena:100000");
        let code = check(&opts);
        std::env::remove_var("BENCH_INJECT_SLOWDOWN");
        assert_eq!(code, 1, "injected slowdown must trip the gate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_filtering_ignores_mismatched_scale() {
        let dir = std::env::temp_dir().join(format!("kernels_base_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let opts = tiny_opts(&dir);
        let mut other = opts.clone();
        other.scale = opts.scale + 1;
        let rows = vec![CellRow {
            cell: "uniform/multiply_arena".into(),
            workload: "uniform".into(),
            kernel: "multiply_arena".into(),
            median_s: 1.0,
            min_s: 1.0,
            max_s: 1.0,
            reps: REPS as u64,
            pinned: true,
        }];
        dump::append_jsonl(&trajectory_path(&opts), &trajectory_entry(&other, &rows, false, 1.0))
            .unwrap();
        assert!(latest_baseline(&opts).unwrap().is_none());
        assert!(latest_baseline(&other).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn speedup_table_pairs_fast_paths_with_predecessors() {
        let mk = |cell: &str, median: f64| CellRow {
            cell: cell.into(),
            workload: cell.split('/').next().unwrap().into(),
            kernel: cell.split('/').nth(1).unwrap().into(),
            median_s: median,
            min_s: median,
            max_s: median,
            reps: 1,
            pinned: false,
        };
        let rows = vec![
            mk("uniform/multiply_chunklist", 2.0),
            mk("uniform/multiply_arena", 1.0),
            mk("uniform/merge_streaming", 3.0),
            mk("uniform/merge_blocked", 1.5),
        ];
        let s = speedups(&rows);
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 2.0).abs() < 1e-12);
        assert!((s[1].1 - 2.0).abs() < 1e-12);
    }
}
