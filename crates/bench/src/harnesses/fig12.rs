//! Fig. 12-style utilization study: where every PE cycle goes.
//!
//! The paper's utilization discussion (§7, Fig. 12's active/stalled split)
//! attributes each processing element's time to useful work versus waiting
//! on the memory hierarchy. The engine's hierarchical
//! [`CycleBreakdown`] makes that first-class: this harness sweeps suite
//! matrices and reports, for the multiply and merge phases, the
//! busy / stall-L0 / stall-L1 / stall-HBM / idle shares per PE class plus
//! per-channel HBM bandwidth occupancy — and, through the shared
//! [`UtilizationShares`] type, the CPU (MKL analog) and GPU (cuSPARSE
//! analog) models' busy/memory/idle splits for the same workloads, so the
//! "OuterSPACE keeps its PEs busy where SIMT stalls" argument is one table.
//! Each phase's measured activity also prices a Table 6 power estimate via
//! [`ActivityFactors::from_phase`].

use outerspace::energy::{ActivityFactors, AreaPowerModel};
use outerspace::outer::MergeKind;
use outerspace::prelude::*;
use outerspace::sim::engine::{CycleBreakdown, UtilizationShares};
use outerspace::sim::phases::merge::{self, RowMergeInfo};
use outerspace::sim::phases::multiply;
use outerspace::sim::xmodels::{gpu::row_imbalance, CpuModel, GpuModel};
use outerspace::sim::PhaseStats;

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "fig12";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 300.0 };

/// One phase's cycle accounting, as share-of-total-PE-cycles fractions.
struct PhaseRow {
    phase: &'static str,
    pe_class: String,
    makespan: u64,
    busy: f64,
    stall_l0: f64,
    stall_l1: f64,
    stall_hbm: f64,
    idle: f64,
    mean_channel_occupancy: f64,
    peak_channel_occupancy: f64,
    power_w: f64,
}

outerspace_json::impl_to_json!(PhaseRow {
    phase,
    pe_class,
    makespan,
    busy,
    stall_l0,
    stall_l1,
    stall_hbm,
    idle,
    mean_channel_occupancy,
    peak_channel_occupancy,
    power_w,
});

/// A baseline model's busy/memory/idle split for the same workload.
struct BaselineRow {
    model: &'static str,
    busy: f64,
    memory: f64,
    idle: f64,
}

outerspace_json::impl_to_json!(BaselineRow { model, busy, memory, idle });

/// Everything one matrix contributes to the figure.
struct MatrixRows {
    matrix: &'static str,
    nnz: u64,
    multiply: PhaseRow,
    merge: PhaseRow,
    baselines: Vec<BaselineRow>,
}

outerspace_json::impl_to_json!(MatrixRows { matrix, nnz, multiply, merge, baselines });

fn phase_row(
    cfg: &OuterSpaceConfig,
    phase: &'static str,
    stats: &PhaseStats,
    bd: &CycleBreakdown,
) -> PhaseRow {
    let total = bd.total_pe_cycles().max(1) as f64;
    let activity = ActivityFactors::from_phase(cfg, stats, bd);
    let power_w =
        AreaPowerModel::tsmc32nm().table6_with_activity(cfg, &activity).total_power_w();
    PhaseRow {
        phase,
        pe_class: bd.pe_class.clone(),
        makespan: bd.makespan,
        busy: bd.busy_cycles as f64 / total,
        stall_l0: bd.stall_l0_cycles as f64 / total,
        stall_l1: bd.stall_l1_cycles as f64 / total,
        stall_hbm: bd.stall_hbm_cycles as f64 / total,
        idle: bd.idle_cycles as f64 / total,
        mean_channel_occupancy: bd.mean_channel_occupancy(),
        peak_channel_occupancy: bd.peak_channel_occupancy(),
        power_w,
    }
}

fn print_phase(name: &str, row: &PhaseRow) {
    println!(
        "  {name:<14} {:<9} {:>5.1}% busy | stalls {:>4.1}% L0 {:>4.1}% L1 {:>5.1}% HBM | \
         {:>5.1}% idle | chan occ {:>4.2} mean {:>4.2} peak | {:>5.2} W",
        row.phase,
        100.0 * row.busy,
        100.0 * row.stall_l0,
        100.0 * row.stall_l1,
        100.0 * row.stall_hbm,
        100.0 * row.idle,
        row.mean_channel_occupancy,
        row.peak_channel_occupancy,
        row.power_w,
    );
}

fn baseline_row(model: &'static str, s: UtilizationShares) -> BaselineRow {
    println!(
        "  {:<24} {:>5.1}% busy | {:>5.1}% memory | {:>5.1}% idle",
        model,
        100.0 * s.busy,
        100.0 * s.memory,
        100.0 * s.idle
    );
    BaselineRow { model, busy: s.busy, memory: s.memory, idle: s.idle }
}

/// Runs the utilization study through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    println!("# per-phase cycle attribution and baseline-model shares (scale {}x)", opts.scale);

    for name in ["email-Enron", "wiki-Vote", "p2p-Gnutella31", "poisson3Da", "ca-CondMat"] {
        let seed = opts.seed;
        let base_scale = opts.scale;
        runner.run_case(name, move || -> CaseResult<MatrixRows> {
            let cfg = OuterSpaceConfig::default();
            let e = outerspace::gen::suite::by_name(name)
                .ok_or_else(|| format!("matrix '{name}' missing from the suite"))?;
            let scale = ((e.dim / 20_000).max(1)) * base_scale;
            let a = e.generate_scaled(scale, seed);
            let a_cc = a.to_csc();
            println!("{name} ({} nnz):", a.nnz());

            // Accelerator: both phases through the engine, with breakdowns.
            let (mult_stats, layout, mult_bd) =
                multiply::simulate_multiply_with_breakdown(&cfg, &a_cc, &a)
                    .expect("fault-free sim cannot fail");
            let (pp, _) = outerspace::outer::multiply(&a_cc, &a).expect("square");
            let (c, _) = outerspace::outer::merge(pp, MergeKind::Streaming);
            let rows: Vec<RowMergeInfo> = (0..layout.nrows())
                .map(|i| {
                    let produced: u64 =
                        layout.row(i).iter().map(|ch| ch.len as u64).sum();
                    let out = c.row_nnz(i) as u64;
                    RowMergeInfo {
                        out_len: out as u32,
                        collisions: produced.saturating_sub(out) as u32,
                    }
                })
                .collect();
            let (merge_stats, merge_bd) =
                merge::simulate_merge_with_breakdown(&cfg, &layout, &rows)
                    .expect("fault-free sim cannot fail");
            let mult_row = phase_row(&cfg, "multiply", &mult_stats, &mult_bd);
            let merge_row = phase_row(&cfg, "merge", &merge_stats, &merge_bd);
            print_phase(name, &mult_row);
            print_phase(name, &merge_row);

            // Baselines through the same share axes.
            let profile = outerspace::sparse::stats::profile(&a);
            let (_, gus) =
                outerspace::baselines::gustavson::spgemm(&a, &a).expect("square");
            let cpu_shares = CpuModel::xeon_e5_1650_v4()
                .spgemm_times(
                    &gus,
                    12 * a.nnz() as u64,
                    a.ncols() as u64,
                    a.nrows() as u64,
                    profile.diagonal_fraction,
                )
                .shares();
            let (_, hash) = outerspace::baselines::hash::spgemm(&a, &a).expect("square");
            let gpu_shares = GpuModel::tesla_k40()
                .cusparse_time(&hash, a.nrows() as u64, row_imbalance(&a, &a))
                .shares();
            let baselines = vec![
                baseline_row("cpu-mkl-model", cpu_shares),
                baseline_row("gpu-cusparse-model", gpu_shares),
            ];
            Ok(MatrixRows {
                matrix: e.name,
                nnz: a.nnz() as u64,
                multiply: mult_row,
                merge: merge_row,
                baselines,
            })
        });
    }
    runner.finalize()
}
