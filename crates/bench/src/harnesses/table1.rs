//! Table 1: bandwidth utilization of MKL sparse GEMM.
//!
//! "Bandwidth utilization of the MKL sparse GEMM on an Intel Core i7
//! running 4 threads. Each matrix has a uniform random distribution of 10
//! million non-zeros." Paper values: dimensions 1 M → 8.4 M, average
//! utilization 44.2 % → 62.4 % (peak 62.5 → 85 %); the point being that MKL
//! *under-utilizes* bandwidth, so more bandwidth alone would not fix it.
//!
//! Reproduction: the Gustavson MKL-analog's touched bytes over its wall
//! time, against this host's measured STREAM-triad bandwidth. VTune's
//! sampled peak is approximated by the busiest quartile of per-row-block
//! timings.

use std::time::Instant;

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "table1";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 16, max_case_secs: 600.0 };

struct Row {
    dimension: u32,
    avg_utilization_pct: f64,
    peak_utilization_pct: f64,
    model_utilization_pct: f64,
    paper_avg_pct: f64,
    paper_peak_pct: f64,
}

outerspace_json::impl_to_json!(Row { dimension, avg_utilization_pct, peak_utilization_pct, model_utilization_pct, paper_avg_pct, paper_peak_pct });

/// Runs the Table 1 study through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    let nnz = 10_000_000 / opts.scale as usize;
    let dims: Vec<u32> = [1_048_576u32, 2_097_152, 4_194_304, 8_388_608]
        .iter()
        .map(|d| d / opts.scale)
        .collect();
    let paper = [(44.2, 62.5), (58.4, 67.5), (62.0, 67.5), (62.4, 85.0)];

    let peak_bw = crate::host_peak_bandwidth_bytes_per_s();
    println!("# Table 1 reproduction: MKL-analog bandwidth utilization, 4 threads");
    println!(
        "# nnz = {nnz} (scale {}x); host triad bandwidth = {:.1} GB/s",
        opts.scale,
        peak_bw / 1e9
    );
    println!(
        "{:>10} | {:>8} {:>8} {:>8} | paper: {:>6} {:>6}",
        "dim", "avg%", "peak%", "model%", "avg%", "peak%"
    );

    for (i, n) in dims.iter().copied().enumerate() {
        let seed = opts.seed;
        let (paper_avg, paper_peak) = paper[i];
        runner.run_case(&format!("n{n}"), move || -> CaseResult<Row> {
            let a = outerspace::gen::uniform::matrix(n, n, nnz, seed);
            let b = outerspace::gen::uniform::matrix(n, n, nnz, seed + 1);
            // Split the multiplication into row blocks so we can sample
            // utilization over time (VTune-style peak vs average).
            let n_blocks = 16u32;
            let mut total_bytes = 0u64;
            let mut total_time = 0.0f64;
            let mut window_rates: Vec<f64> = Vec::new();
            let mut model_traffic = outerspace::baselines::TrafficStats::default();
            let rows_per_block = n / n_blocks;
            for blk in 0..n_blocks {
                let lo = blk * rows_per_block;
                let hi = if blk == n_blocks - 1 { n } else { (blk + 1) * rows_per_block };
                let sub = take_rows(&a, lo, hi);
                let t = Instant::now();
                let (_, stats) =
                    outerspace::baselines::gustavson::spgemm_parallel(&sub, &b, 4)
                        .expect("shapes ok");
                let dt = t.elapsed().as_secs_f64();
                total_bytes += stats.bytes_touched;
                total_time += dt;
                model_traffic.bytes_touched += stats.bytes_touched;
                model_traffic.multiplies += stats.multiplies;
                model_traffic.additions += stats.additions;
                if dt > 0.0 {
                    window_rates.push(stats.bytes_touched as f64 / dt);
                }
            }
            window_rates.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            let avg = (total_bytes as f64 / total_time) / peak_bw * 100.0;
            let peak = window_rates.last().copied().unwrap_or(0.0) / peak_bw * 100.0;
            // What the Xeon model (Table 3's machine) predicts for this load.
            let model = outerspace::sim::xmodels::CpuModel::xeon_e5_1650_v4()
                .spgemm_bandwidth_utilization(
                    &model_traffic,
                    12 * b.nnz() as u64,
                    b.ncols() as u64,
                    n as u64,
                    0.0,
                )
                * 100.0;
            let row = Row {
                dimension: n,
                avg_utilization_pct: avg,
                peak_utilization_pct: peak.min(100.0),
                model_utilization_pct: model,
                paper_avg_pct: paper_avg,
                paper_peak_pct: paper_peak,
            };
            println!(
                "{:>10} | {:>7.1} {:>7.1} {:>7.1} |        {:>6.1} {:>6.1}",
                row.dimension,
                row.avg_utilization_pct,
                row.peak_utilization_pct,
                row.model_utilization_pct,
                row.paper_avg_pct,
                row.paper_peak_pct
            );
            Ok(row)
        });
    }
    println!("# shape: utilization well below 100% -> bandwidth is not MKL's binding constraint");
    runner.finalize()
}

/// Extracts rows `[lo, hi)` of `a` as a standalone matrix.
fn take_rows(a: &outerspace::sparse::Csr, lo: u32, hi: u32) -> outerspace::sparse::Csr {
    let ptr = a.row_ptr();
    let base = ptr[lo as usize];
    let row_ptr: Vec<usize> = ptr[lo as usize..=hi as usize].iter().map(|p| p - base).collect();
    let cols = a.col_indices()[base..ptr[hi as usize]].to_vec();
    let vals = a.values()[base..ptr[hi as usize]].to_vec();
    outerspace::sparse::Csr::new(hi - lo, a.ncols(), row_ptr, cols, vals)
        .expect("slice of a valid matrix is valid")
}
