//! §8: OuterSPACE scaling — the silicon-interposed 4× system and multi-node
//! torus configurations.
//!
//! "In order to handle matrix sizes larger than a few million, a
//! silicon-interposed system with 4 HBMs and 4× the PEs on-chip could be
//! realized ... we conceive equipping our architecture with node-to-node
//! SerDes channels to allow multiple OuterSPACE nodes connected in a torus."
//!
//! This study runs the same workload on the Table 2 baseline, the
//! interposed 4× chip, and 4-/16-node tori, reporting how throughput scales
//! with resources (strong scaling) and how a proportionally grown workload
//! fares (weak scaling).

use outerspace::prelude::*;

use crate::runner::{field_f64, CaseResult, Runner, RunSummary};
use crate::{fmt_secs, HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "sec8_scaling";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 600.0 };

struct Row {
    system: String,
    pes: u64,
    bandwidth_gbps: u64,
    workload_nnz: usize,
    seconds: f64,
    gflops: f64,
    speedup_vs_base: f64,
}

outerspace_json::impl_to_json!(Row { system, pes, bandwidth_gbps, workload_nnz, seconds, gflops, speedup_vs_base });

/// The four §8 system configurations, index-addressable so a case closure
/// can rebuild its config without sharing state.
const SYSTEMS: [&str; 4] = ["baseline (Table 2)", "interposed 4x", "torus x4", "torus x16"];

fn system_config(idx: usize) -> OuterSpaceConfig {
    let base = OuterSpaceConfig::default();
    match idx {
        0 => base,
        1 => base.interposed_4x(),
        2 => base.torus(4),
        _ => base.torus(16),
    }
}

fn print_row(row: &Row) {
    println!(
        "{:<20} {:>6} {:>8} {:>10} | {:>10} {:>8.2} {:>8.2}",
        row.system,
        row.pes,
        row.bandwidth_gbps,
        row.workload_nnz,
        fmt_secs(row.seconds),
        row.gflops,
        row.speedup_vs_base
    );
}

/// Runs the §8 scaling study through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    println!("# Section 8 scaling study");
    println!(
        "{:<20} {:>6} {:>8} {:>10} | {:>10} {:>8} {:>8}",
        "system", "PEs", "GB/s", "nnz", "time", "GFLOPS", "speedup"
    );

    // --- Strong scaling: fixed workload, growing machine. The baseline case
    // runs first; later cases derive their speedup from its dumped value, so
    // the dependency also survives `--resume` (where the baseline is reused
    // from the checkpoint instead of re-run).
    let mut base_secs = f64::NAN;
    for (idx, name) in SYSTEMS.iter().enumerate() {
        let seed = opts.seed;
        let scale = opts.scale;
        let base = base_secs;
        let value = runner.run_case(&format!("strong-{idx}"), move || -> CaseResult<Row> {
            let cfg = system_config(idx);
            let a = outerspace::gen::rmat::graph500(
                32_768 / scale,
                400_000 / scale as usize,
                seed,
            );
            let sim = Simulator::new(cfg.clone()).expect("valid scaled config");
            let (_, rep) = sim.spgemm(&a, &a).expect("square");
            let base = if idx == 0 { rep.seconds() } else { base };
            let row = Row {
                system: format!("{name} [strong]"),
                pes: cfg.total_pes(),
                bandwidth_gbps: cfg.hbm_total_bandwidth_bytes_per_sec() / 1_000_000_000,
                workload_nnz: a.nnz(),
                seconds: rep.seconds(),
                gflops: rep.gflops(),
                speedup_vs_base: base / rep.seconds(),
            };
            print_row(&row);
            Ok(row)
        });
        if idx == 0 {
            base_secs = value.and_then(|v| field_f64(&v, "seconds")).unwrap_or(f64::NAN);
        }
    }

    // --- Weak scaling: workload grows with the machine. ---
    println!();
    let mut base_gflops = f64::NAN;
    for (idx, name) in SYSTEMS.iter().enumerate() {
        let seed = opts.seed;
        let scale = opts.scale;
        let base = base_gflops;
        let value = runner.run_case(&format!("weak-{idx}"), move || -> CaseResult<Row> {
            let cfg = system_config(idx);
            let grow = [1u32, 2, 4, 8][idx];
            let a = outerspace::gen::rmat::graph500(
                (12_288 / scale) * grow,
                (100_000 / scale as usize) * grow as usize,
                seed,
            );
            let sim = Simulator::new(cfg.clone()).expect("valid scaled config");
            let (_, rep) = sim.spgemm(&a, &a).expect("square");
            let base = if idx == 0 { rep.gflops() } else { base };
            let row = Row {
                system: format!("{name} [weak]"),
                pes: cfg.total_pes(),
                bandwidth_gbps: cfg.hbm_total_bandwidth_bytes_per_sec() / 1_000_000_000,
                workload_nnz: a.nnz(),
                seconds: rep.seconds(),
                gflops: rep.gflops(),
                speedup_vs_base: rep.gflops() / base,
            };
            print_row(&row);
            Ok(row)
        });
        if idx == 0 {
            base_gflops = value.and_then(|v| field_f64(&v, "gflops")).unwrap_or(f64::NAN);
        }
    }
    println!("# shape: throughput scales with node count under weak scaling; strong scaling");
    println!("# saturates once the fixed workload no longer fills the PE array (Amdahl).");
    runner.finalize()
}
