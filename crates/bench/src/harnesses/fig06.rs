//! Fig. 6: performance scaling on R-MAT vs uniformly random matrices.
//!
//! "Performance-scaling comparison of OuterSPACE with change in matrix
//! dimension and density. The set of data on the left is for R-MATs with
//! parameters (A=0.57, B=C=0.19) for undirected graphs. The set on the
//! right is for uniformly random matrices of the same size and density."
//! `nEdges = 100 000`, `nVertices` swept 5 000 → 80 000.
//!
//! Expected shape: OuterSPACE roughly flat across the sweep; larger margins
//! over the baselines on R-MAT than on uniform; cuSPARSE improving as
//! density rises (small `nVertices`).

use crate::runner::{field_f64, CaseResult, Runner, RunSummary};
use crate::{fmt_secs, geomean, run_baselines, run_outerspace, HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "fig06";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 4, max_case_secs: 300.0 };

struct Row {
    family: &'static str,
    n_vertices: u32,
    nnz: usize,
    outerspace_s: f64,
    mkl_model_s: f64,
    cusparse_model_s: f64,
    cusp_model_s: f64,
    speedup_mkl: f64,
    speedup_cusparse: f64,
    speedup_cusp: f64,
}

outerspace_json::impl_to_json!(Row { family, n_vertices, nnz, outerspace_s, mkl_model_s, cusparse_model_s, cusp_model_s, speedup_mkl, speedup_cusparse, speedup_cusp });

/// Runs the Fig. 6 sweep through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    let n_edges = 100_000 / opts.scale as usize;
    let vertex_counts: Vec<u32> =
        [5_000u32, 10_000, 20_000, 40_000, 80_000].iter().map(|v| v / opts.scale).collect();

    println!("# Fig. 6 reproduction: R-MAT vs uniform scaling");
    println!("# nEdges = {n_edges} (scale {}x)", opts.scale);
    println!(
        "{:>8} {:>9} {:>9} | {:>10} {:>10} {:>10} {:>10} | {:>6} {:>6} {:>6}",
        "family", "nVert", "nnz", "OuterSPACE", "MKL", "cuSPARSE", "CUSP", "xMKL", "xCUSP.", "xCUSP"
    );

    for family in ["rmat", "uniform"] {
        for &nv in &vertex_counts {
            let seed = opts.seed;
            runner.run_case(&format!("{family}-n{nv}"), move || -> CaseResult<Row> {
                let a = if family == "rmat" {
                    outerspace::gen::rmat::graph500(nv, n_edges, seed)
                } else {
                    let target = outerspace::gen::rmat::graph500(nv, n_edges, seed).nnz();
                    outerspace::gen::uniform::matrix(nv, nv, target, seed)
                };
                let rep = run_outerspace(&a);
                let base = run_baselines(&a);
                let ours = rep.seconds();
                let row = Row {
                    family,
                    n_vertices: nv,
                    nnz: a.nnz(),
                    outerspace_s: ours,
                    mkl_model_s: base.mkl_model_s,
                    cusparse_model_s: base.cusparse_model_s,
                    cusp_model_s: base.cusp_model_s,
                    speedup_mkl: base.mkl_model_s / ours,
                    speedup_cusparse: base.cusparse_model_s / ours,
                    speedup_cusp: base.cusp_model_s / ours,
                };
                println!(
                    "{:>8} {:>9} {:>9} | {:>10} {:>10} {:>10} {:>10} | {:>6.1} {:>6.1} {:>6.1}",
                    row.family,
                    row.n_vertices,
                    row.nnz,
                    fmt_secs(row.outerspace_s),
                    fmt_secs(row.mkl_model_s),
                    fmt_secs(row.cusparse_model_s),
                    fmt_secs(row.cusp_model_s),
                    row.speedup_mkl,
                    row.speedup_cusparse,
                    row.speedup_cusp,
                );
                Ok(row)
            });
        }
    }

    let mean = |f: &str, key: &str| {
        let v: Vec<f64> = runner
            .ok_values()
            .filter(|r| r.get("family").and_then(outerspace_json::Json::as_str) == Some(f))
            .filter_map(|r| field_f64(r, key))
            .collect();
        geomean(&v)
    };
    println!(
        "# shape: geomean speedups  rmat: MKL {:.1}x cuSPARSE {:.1}x CUSP {:.1}x | uniform: MKL {:.1}x cuSPARSE {:.1}x CUSP {:.1}x",
        mean("rmat", "speedup_mkl"),
        mean("rmat", "speedup_cusparse"),
        mean("rmat", "speedup_cusp"),
        mean("uniform", "speedup_mkl"),
        mean("uniform", "speedup_cusparse"),
        mean("uniform", "speedup_cusp"),
    );
    runner.finalize()
}
