//! §7.3: dynamic memory-allocation requests vs the static multiplier α.
//!
//! "Our analysis of the total number of dynamic requests to increment the
//! spill-over pointer, while sweeping (α), shows that the count of these
//! requests drops to less than 10,000 for α >= 2 for almost all the
//! matrices in Table 4. m133-b3 is an outlier, with zero dynamic requests."

use outerspace::gen::suite::TABLE4;
use outerspace_json::Json;

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "sec73";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 600.0 };

struct Row {
    name: &'static str,
    scale: u32,
    requests_by_alpha: Vec<(f64, u64)>,
    wasted_at_alpha2: u64,
}

outerspace_json::impl_to_json!(Row { name, scale, requests_by_alpha, wasted_at_alpha2 });

/// `requests_by_alpha[i].1` of a dumped row (the request count at the i-th
/// swept α), tolerant of checkpoint-loaded JSON.
fn requests_at(row: &Json, i: usize) -> Option<u64> {
    row.get("requests_by_alpha")?
        .as_array()?
        .get(i)?
        .as_array()?
        .get(1)?
        .as_u64()
}

/// Runs the §7.3 allocation sweep through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    println!("# Section 7.3 reproduction: spill-over requests vs alpha (C = A x A)");
    println!(
        "{:<16} {:>5} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>12}",
        "matrix", "scale", "a=1", "a=1.5", "a=2", "a=3", "a=4", "wasted@a=2"
    );

    for e in TABLE4 {
        let case_opts = opts.clone();
        runner.run_case(e.name, move || -> CaseResult<Row> {
            let alphas = [1.0, 1.5, 2.0, 3.0, 4.0];
            let scale = super::suite_scale(e, &case_opts)?;
            let a = e.generate_scaled(scale, case_opts.seed);
            let reports = outerspace::sim::alloc::analyze(&a.to_csc(), &a, &alphas);
            let row = Row {
                name: e.name,
                scale,
                requests_by_alpha: reports.iter().map(|r| (r.alpha, r.dynamic_requests)).collect(),
                wasted_at_alpha2: reports[2].wasted_elements,
            };
            println!(
                "{:<16} {:>5} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>12}",
                row.name,
                row.scale,
                row.requests_by_alpha[0].1,
                row.requests_by_alpha[1].1,
                row.requests_by_alpha[2].1,
                row.requests_by_alpha[3].1,
                row.requests_by_alpha[4].1,
                row.wasted_at_alpha2,
            );
            Ok(row)
        });
    }

    if let Some(m133) = runner
        .ok_values()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("m133-b3"))
    {
        println!(
            "# shape: m133-b3 issues {} requests at alpha=1 (paper: 0, its rows are exactly 4-wide)",
            requests_at(m133, 0).unwrap_or(0)
        );
    }
    let ok: Vec<_> = runner.ok_values().collect();
    let settled = ok
        .iter()
        .filter(|r| {
            let a1 = requests_at(r, 0).unwrap_or(u64::MAX);
            let a2 = requests_at(r, 2).unwrap_or(u64::MAX);
            a1 == 0 || (a2 as f64) < 0.2 * a1 as f64 || a2 < 10_000
        })
        .count();
    println!(
        "# shape: {settled}/{} matrices settle below the paper's 10k-request threshold by alpha=2",
        ok.len()
    );
    runner.finalize()
}
