//! Head-to-head machine-model frontier: OuterSPACE vs the SpArch analog.
//!
//! Both machines run the same workloads through their own phase pipelines
//! (`sim::model::for_kind`): OuterSPACE charges format conversion + tiled
//! multiply + streaming merge, the SpArch analog a condensed multiply + the
//! pipelined merge tree. Each run is priced with the machine-aware Table 6
//! area/power model, so every row carries cycles, watts, and mm² — the three
//! axes of the frontier. Per workload, each machine is marked Pareto-optimal
//! or dominated on (cycles, power, area).
//!
//! Besides the runner artifact (`fig_sparch.json`, which carries wall-clock
//! metadata), the harness writes `fig_sparch_frontier.json`: fixed field
//! order, no timestamps — two runs at the same scale and seed produce
//! byte-identical files, the property `ci.sh` diffs.

use outerspace::energy::AreaPowerModel;
use outerspace::prelude::*;
use outerspace::sim::{model, MachineKind};
use outerspace_json::{dump, Json};

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "fig_sparch";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 600.0 };
/// Workload divisor applied by the binary's `--smoke` flag (matches the
/// `runall` entry's smoke scale).
pub const SMOKE_SCALE: u32 = 16;

/// One machine × workload measurement.
struct Row {
    machine: String,
    workload: String,
    nnz: u64,
    result_nnz: u64,
    cycles: u64,
    convert_cycles: u64,
    multiply_cycles: u64,
    merge_cycles: u64,
    gflops: f64,
    power_w: f64,
    area_mm2: f64,
    energy_j: f64,
    edp_js: f64,
    multiply_busy_share: f64,
}

outerspace_json::impl_to_json!(Row {
    machine,
    workload,
    nnz,
    result_nnz,
    cycles,
    convert_cycles,
    multiply_cycles,
    merge_cycles,
    gflops,
    power_w,
    area_mm2,
    energy_j,
    edp_js,
    multiply_busy_share,
});

fn machine_label(kind: MachineKind) -> &'static str {
    match kind {
        MachineKind::OuterSpace => "outer_space",
        MachineKind::SpArch => "sparch",
    }
}

/// Runs one machine on one workload and prices the design.
fn measure(kind: MachineKind, workload: &'static str, a: &Csr) -> CaseResult<Row> {
    let cfg = OuterSpaceConfig { machine: kind, ..OuterSpaceConfig::default() };
    let pipe = model::for_kind(kind).spgemm(&cfg, a, a).map_err(|e| e.to_string())?;
    let busy_share = pipe.multiply_breakdown.busy_cycles as f64
        / pipe.multiply_breakdown.total_pe_cycles().max(1) as f64;
    let result_nnz = pipe.c.nnz() as u64;
    let report = SimReport {
        convert: pipe.convert,
        multiply: pipe.multiply,
        merge: pipe.merge,
        config: cfg.clone(),
    };
    let pricing = AreaPowerModel::tsmc32nm();
    let table6 = pricing.table6(&cfg, Some(&report));
    let energy = pricing.energy_report(&cfg, &report);
    let row = Row {
        machine: machine_label(kind).to_string(),
        workload: workload.to_string(),
        nnz: a.nnz() as u64,
        result_nnz,
        cycles: report.total_cycles(),
        convert_cycles: report.convert.as_ref().map_or(0, |p| p.cycles),
        multiply_cycles: report.multiply.cycles,
        merge_cycles: report.merge.cycles,
        gflops: report.gflops(),
        power_w: table6.total_power_w(),
        area_mm2: table6.total_area_mm2(),
        energy_j: energy.total_j,
        edp_js: energy.energy_delay_js,
        multiply_busy_share: busy_share,
    };
    println!(
        "  {:<11} {:<9} {:>10} cyc (conv {:>7} | mul {:>8} | merge {:>8}) | \
         {:>6.2} W {:>6.1} mm2 | busy {:>5.1}%",
        row.machine,
        row.workload,
        row.cycles,
        row.convert_cycles,
        row.multiply_cycles,
        row.merge_cycles,
        row.power_w,
        row.area_mm2,
        100.0 * row.multiply_busy_share,
    );
    Ok(row)
}

fn str_field<'a>(row: &'a Json, key: &str) -> &'a str {
    row.get(key).and_then(Json::as_str).unwrap_or("")
}

fn u64_field(row: &Json, key: &str) -> u64 {
    row.get(key).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

fn f64_field(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(Json::as_f64).unwrap_or(f64::MAX)
}

/// `a` dominates `b` when it is no worse on every frontier axis (cycles,
/// power, area) and strictly better on at least one.
fn dominates(a: &Json, b: &Json) -> bool {
    let (ac, bc) = (u64_field(a, "cycles"), u64_field(b, "cycles"));
    let (ap, bp) = (f64_field(a, "power_w"), f64_field(b, "power_w"));
    let (aa, ba) = (f64_field(a, "area_mm2"), f64_field(b, "area_mm2"));
    let no_worse = ac <= bc && ap <= bp && aa <= ba;
    let better = ac < bc || ap < bp || aa < ba;
    no_worse && better
}

/// True per row when no same-workload row dominates it.
pub fn frontier_flags(rows: &[Json]) -> Vec<bool> {
    (0..rows.len())
        .map(|i| {
            !(0..rows.len()).any(|j| {
                j != i
                    && str_field(&rows[j], "workload") == str_field(&rows[i], "workload")
                    && dominates(&rows[j], &rows[i])
            })
        })
        .collect()
}

fn with_pareto(row: Json, pareto: bool) -> Json {
    match row {
        Json::Obj(mut pairs) => {
            pairs.push(("pareto".to_string(), Json::Bool(pareto)));
            Json::Obj(pairs)
        }
        other => other,
    }
}

/// The workload lineup: one generator call per family, divided by `--scale`.
fn workloads(opts: &HarnessOpts) -> Vec<(&'static str, Csr)> {
    let n = (4096 / opts.scale).max(64);
    let nnz = (n as usize) * 8;
    vec![
        ("rmat", outerspace::gen::rmat::graph500(n.next_power_of_two(), nnz, opts.seed)),
        ("uniform", outerspace::gen::uniform::matrix(n, n, nnz, opts.seed ^ 0x9e37)),
        ("powerlaw", outerspace::gen::powerlaw::graph(n, nnz, opts.seed ^ 0x5bd1)),
    ]
}

/// Runs the head-to-head study through the crash-safe runner and writes the
/// deterministic frontier artifact.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    println!("# OuterSPACE vs SpArch-analog machine models (scale {}x)", opts.scale);

    let mut rows: Vec<Json> = Vec::new();
    for (workload, a) in workloads(opts) {
        for kind in [MachineKind::OuterSpace, MachineKind::SpArch] {
            let case = format!("{}:{workload}", machine_label(kind));
            let a = a.clone();
            if let Some(row) = runner.run_case(&case, move || measure(kind, workload, &a)) {
                rows.push(row);
            }
        }
    }

    // Cross-machine sanity: both machines must agree on every product size
    // (the functional claim the oracle's `sparch_cc` entry enforces at
    // scale; here it guards the artifact).
    for (workload, _) in workloads(opts) {
        let sizes: Vec<u64> = rows
            .iter()
            .filter(|r| str_field(r, "workload") == workload)
            .map(|r| u64_field(r, "result_nnz"))
            .collect();
        if sizes.windows(2).any(|p| p[0] != p[1]) {
            println!("# WARNING: machines disagree on result nnz for {workload}: {sizes:?}");
        }
    }

    let flags = frontier_flags(&rows);
    let rows: Vec<Json> =
        rows.into_iter().zip(flags).map(|(r, p)| with_pareto(r, p)).collect();
    for r in &rows {
        println!(
            "#   {:<11} {:<9} -> {}",
            str_field(r, "machine"),
            str_field(r, "workload"),
            if matches!(r.get("pareto"), Some(Json::Bool(true))) {
                "pareto"
            } else {
                "dominated"
            },
        );
    }

    let frontier_path = opts.out_dir.join("fig_sparch_frontier.json");
    let doc = Json::Obj(vec![
        ("scale".to_string(), Json::UInt(opts.scale as u64)),
        ("seed".to_string(), Json::UInt(opts.seed)),
        ("rows".to_string(), Json::Arr(rows)),
    ]);
    if let Err(e) = dump::write_json_atomic(&frontier_path, &doc) {
        eprintln!("error: write {}: {e}", frontier_path.display());
    } else {
        println!("# frontier artifact: {}", frontier_path.display());
    }
    runner.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, cycles: u64, power: f64, area: f64) -> Json {
        Json::Obj(vec![
            ("workload".to_string(), Json::Str(workload.to_string())),
            ("cycles".to_string(), Json::UInt(cycles)),
            ("power_w".to_string(), Json::Float(power)),
            ("area_mm2".to_string(), Json::Float(area)),
        ])
    }

    #[test]
    fn frontier_marks_dominated_rows_per_workload() {
        let rows = vec![
            row("rmat", 100, 10.0, 80.0),
            row("rmat", 200, 12.0, 90.0), // dominated by the first row
            row("rmat", 300, 5.0, 50.0),  // cheaper: pareto
            row("uniform", 999, 99.0, 999.0), // alone in its workload: pareto
        ];
        assert_eq!(frontier_flags(&rows), vec![true, false, true, true]);
    }

    #[test]
    fn incomparable_rows_are_both_pareto() {
        let rows = vec![row("w", 100, 20.0, 80.0), row("w", 200, 10.0, 80.0)];
        assert_eq!(frontier_flags(&rows), vec![true, true]);
    }
}
