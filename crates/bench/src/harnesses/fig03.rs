//! Fig. 3: CPU outer-product implementation vs Intel MKL.
//!
//! "Comparison of our outer product implementation against Intel MKL on a
//! Xeon multi-core CPU. The matrices are uniformly random with increasing
//! dimension and decreasing density, keeping the number of non-zeros
//! constant at 1 million." (6 threads; conversion/allocation excluded.)
//!
//! Reproduction: our multi-threaded software outer product vs the
//! Gustavson MKL-analog, both host-measured, plus the calibrated Xeon model
//! for reference. Expected shape: MKL's time *drops* with falling density
//! while the outer product pays growing bookkeeping — the paper's argument
//! for why the algorithm needs custom hardware.

use std::time::Instant;

use outerspace::outer::MergeKind;
use outerspace::sim::xmodels::CpuModel;

use crate::runner::{field_f64, CaseResult, Runner, RunSummary};
use crate::{fmt_secs, HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "fig03";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 8, max_case_secs: 600.0 };

struct Row {
    n: u32,
    density: f64,
    outer_multiply_s: f64,
    outer_merge_s: f64,
    outer_total_s: f64,
    mkl_host_s: f64,
    mkl_model_s: f64,
}

outerspace_json::impl_to_json!(Row { n, density, outer_multiply_s, outer_merge_s, outer_total_s, mkl_host_s, mkl_model_s });

/// Runs the Fig. 3 sweep through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    let nnz = 1_000_000 / opts.scale as usize;
    let dims: Vec<u32> =
        [32_768u32, 65_536, 131_072, 262_144, 524_288].iter().map(|d| d / opts.scale).collect();
    println!("# Fig. 3 reproduction: outer product vs MKL-analog on this host");
    println!("# nnz = {nnz} (scale {}x), 6 threads", opts.scale);
    println!(
        "{:>9} {:>10} | {:>10} {:>10} {:>10} | {:>10} {:>10}",
        "N", "density", "out-mult", "out-merge", "out-total", "mkl-host", "mkl-model"
    );

    for n in dims {
        let seed = opts.seed;
        runner.run_case(&format!("n{n}"), move || -> CaseResult<Row> {
            let a = outerspace::gen::uniform::matrix(n, n, nnz, seed);
            let b = outerspace::gen::uniform::matrix(n, n, nnz, seed + 1);

            // Outer product, phases timed separately (format conversion
            // excluded, matching the figure's caption).
            let a_cc = a.to_csc();
            let t0 = Instant::now();
            let (pp, _) = outerspace::outer::multiply_parallel(&a_cc, &b, 6).expect("shapes ok");
            let t_mult = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let _ = outerspace::outer::merge_parallel(pp, MergeKind::Streaming, 6);
            let t_merge = t1.elapsed().as_secs_f64();

            // MKL analog on the host.
            let t2 = Instant::now();
            let (_, gus) =
                outerspace::baselines::gustavson::spgemm_parallel(&a, &b, 6).expect("shapes ok");
            let mkl_host = t2.elapsed().as_secs_f64();
            let mkl_model = CpuModel::xeon_e5_1650_v4().spgemm_seconds(
                &gus,
                12 * b.nnz() as u64,
                b.ncols() as u64,
                a.nrows() as u64,
                0.0,
            );

            let row = Row {
                n,
                density: a.density(),
                outer_multiply_s: t_mult,
                outer_merge_s: t_merge,
                outer_total_s: t_mult + t_merge,
                mkl_host_s: mkl_host,
                mkl_model_s: mkl_model,
            };
            println!(
                "{:>9} {:>10.2e} | {:>10} {:>10} {:>10} | {:>10} {:>10}",
                row.n,
                row.density,
                fmt_secs(row.outer_multiply_s),
                fmt_secs(row.outer_merge_s),
                fmt_secs(row.outer_total_s),
                fmt_secs(row.mkl_host_s),
                fmt_secs(row.mkl_model_s),
            );
            Ok(row)
        });
    }

    // Shape check the paper's Fig. 3 exhibits: MKL accelerates as density
    // falls; the outer product's total changes far less.
    let ok: Vec<_> = runner.ok_values().collect();
    if let (Some(first), Some(last)) = (ok.first(), ok.last()) {
        if ok.len() >= 2 {
            let ratio = field_f64(first, "mkl_host_s").unwrap_or(f64::NAN)
                / field_f64(last, "mkl_host_s").unwrap_or(f64::NAN);
            let change = field_f64(first, "outer_total_s").unwrap_or(f64::NAN)
                / field_f64(last, "outer_total_s").unwrap_or(f64::NAN);
            println!(
                "# shape: MKL-analog {}x faster at lowest density; outer product {change:.1}x change",
                ratio.round(),
            );
        }
    }
    runner.finalize()
}
