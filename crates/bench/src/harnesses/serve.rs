//! Service load/chaos harness: drives `outerspace::serve` through three
//! escalating scenarios — steady traffic, overload with a tiny admission
//! queue, and full chaos (injected accelerator faults, forced worker panics,
//! forced mid-compute stalls) — through the crash-safe runner.
//!
//! Each case starts a fresh server, runs an open-loop load, drains it, and
//! *checks the service invariants as part of the case*: the accounting
//! identity (`completed + rejected + timed_out == submitted`, on both the
//! client's and the server's books), zero payloads delivered past their
//! deadline, and per-scenario expectations (overload must shed; chaos must
//! surface failures and timeouts without losing a single request). A
//! violated invariant is a failed case, so `runall --smoke` — and the
//! `ci.sh` serve gate on top of it — turns robustness regressions into red
//! builds. The full per-scenario report lands in `<out>/serve_<case>.json`.

use std::time::Duration;

use outerspace::serve::loadgen::{self, Arrivals, Scenario};
use outerspace::serve::{Server, ServerConfig, Snapshot};
use outerspace::sim::FaultModel;
use outerspace_json::dump;

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "serve";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 600.0 };

/// One scenario's summary row.
pub struct Row {
    /// Scenario name.
    pub case: String,
    /// Requests submitted.
    pub submitted: u64,
    /// Successful responses (including cache hits).
    pub completed_ok: u64,
    /// Responses served from the content-addressed cache.
    pub cache_hits: u64,
    /// Shed at admission (all reasons).
    pub shed: u64,
    /// Deadline expiries.
    pub timed_out: u64,
    /// Terminal failures (panics included).
    pub failed: u64,
    /// Transient-fault retries spent.
    pub retries: u64,
    /// Accelerator→software fallbacks.
    pub fallbacks: u64,
    /// Median latency of successful responses, ms.
    pub p50_ms: f64,
    /// Tail latency, ms.
    pub p99_ms: f64,
    /// Successful responses per second of wall clock.
    pub throughput_rps: f64,
    /// Both accounting identities held.
    pub accounted_ok: bool,
    /// Where the full report was written.
    pub report_path: String,
}

outerspace_json::impl_to_json!(Row {
    case,
    submitted,
    completed_ok,
    cache_hits,
    shed,
    timed_out,
    failed,
    retries,
    fallbacks,
    p50_ms,
    p99_ms,
    throughput_rps,
    accounted_ok,
    report_path,
});

fn requests_for(opts: &HarnessOpts) -> usize {
    if opts.full {
        512
    } else {
        (96 / opts.scale.max(1) as usize).max(12)
    }
}

/// Runs one scenario against a fresh server and verifies the invariants.
fn drive(
    case: &str,
    server_cfg: ServerConfig,
    sc: &Scenario,
    opts: &HarnessOpts,
    expect: impl FnOnce(&Snapshot) -> Result<(), String>,
) -> CaseResult<Row> {
    let server = Server::start(server_cfg);
    let tally = loadgen::run(&server, sc);
    let snapshot = server.shutdown();

    let report_path = opts.out_dir.join(format!("serve_{case}.json"));
    let report = loadgen::report_json(sc, &tally, &snapshot);
    dump::write_json_atomic(&report_path, &report)
        .map_err(|e| format!("write {}: {e}", report_path.display()))?;

    // --- Invariants: failures here are failed cases, not footnotes. ---
    if !snapshot.accounted_ok() {
        return Err(format!(
            "server accounting broke: ok {} + failed {} + shed {} + timed_out {} != submitted {}",
            snapshot.completed_ok,
            snapshot.failed,
            snapshot.rejected(),
            snapshot.timed_out,
            snapshot.submitted
        ));
    }
    if !tally.accounted_ok() {
        return Err("client accounting broke: a ticket vanished".to_string());
    }
    if snapshot.deadline_violations > 0 {
        return Err(format!(
            "{} payload(s) delivered past their deadline",
            snapshot.deadline_violations
        ));
    }
    expect(&snapshot)?;

    let throughput = if tally.wall_s > 0.0 { tally.ok as f64 / tally.wall_s } else { 0.0 };
    let row = Row {
        case: case.to_string(),
        submitted: snapshot.submitted,
        completed_ok: snapshot.completed_ok,
        cache_hits: snapshot.cache_hits,
        shed: snapshot.rejected(),
        timed_out: snapshot.timed_out,
        failed: snapshot.failed,
        retries: snapshot.retries,
        fallbacks: snapshot.fallbacks,
        p50_ms: snapshot.p50_ms(),
        p99_ms: snapshot.p99_ms(),
        throughput_rps: throughput,
        accounted_ok: true,
        report_path: report_path.display().to_string(),
    };
    println!(
        "# serve {case}: {} submitted | {} ok ({} cached) | {} shed | {} timed out | {} failed \
         | p50 {:.1} ms p99 {:.1} ms",
        row.submitted, row.completed_ok, row.cache_hits, row.shed, row.timed_out, row.failed,
        row.p50_ms, row.p99_ms
    );
    Ok(row)
}

/// Injected memory + PE faults for the chaos case (mirrors the
/// `ospace-serve --chaos` preset).
fn chaos_faults(seed: u64) -> FaultModel {
    FaultModel {
        seed,
        hbm_ber: 1e-7,
        drop_rate: 0.05,
        pe_kill_count: 1,
        pe_kill_cycle: 1_000,
        max_retries: 2,
        ..FaultModel::default()
    }
}

/// Runs the three scenarios through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    let requests = requests_for(opts);
    println!("# serve load/chaos harness ({requests} requests per scenario)");

    let base = Scenario {
        requests,
        pool: (requests / 4).max(4),
        scale: 96,
        nnz: 900,
        spmv_fraction: 0.25,
        seed: opts.seed,
        arrivals: Arrivals::Burst,
        deadline: Duration::from_secs(30),
        chaos_panic_every: 0,
        chaos_sleep_every: 0,
        chaos_sleep_ms: 0,
        chaos_sdc_every: 0,
        golden_check: false,
    };

    // Healthy service under a burst: everything completes, the small op
    // pool produces cache hits, nothing is shed or times out.
    {
        let (opts, sc) = (opts.clone(), base.clone());
        runner.run_case("steady", move || {
            let cfg = ServerConfig {
                workers: 4,
                queue_cap: sc.requests.max(1),
                admission_guard: false,
                ..ServerConfig::default()
            };
            drive("steady", cfg, &sc, &opts, |s| {
                if s.completed_ok != s.submitted {
                    return Err(format!(
                        "steady traffic should all complete: {} of {}",
                        s.completed_ok, s.submitted
                    ));
                }
                if s.cache_hits == 0 {
                    return Err("pooled ops produced no cache hits".to_string());
                }
                Ok(())
            })
        });
    }

    // Burst into a tiny queue: typed shedding must engage, and whatever is
    // admitted must still complete within deadline.
    {
        let (opts, mut sc) = (opts.clone(), base.clone());
        runner.run_case("overload", move || {
            sc.arrivals = Arrivals::Burst;
            let cfg = ServerConfig {
                workers: 2,
                queue_cap: 4,
                admission_guard: false,
                ..ServerConfig::default()
            };
            drive("overload", cfg, &sc, &opts, |s| {
                if s.rejected_queue_full == 0 {
                    return Err("a burst into a 4-deep queue must shed load".to_string());
                }
                Ok(())
            })
        });
    }

    // Full chaos: injected accelerator faults + forced panics + forced
    // stalls past the deadline. The service must degrade, not break: every
    // request accounted, panics isolated to failures, stalls to timeouts.
    {
        let (opts, mut sc) = (opts.clone(), base.clone());
        runner.run_case("chaos", move || {
            sc.deadline = Duration::from_millis(1_500);
            sc.chaos_panic_every = 7;
            sc.chaos_sleep_every = 11;
            sc.chaos_sleep_ms = 5_000;
            // Admit everything: shedding is the overload case's concern, and
            // a shed panic/stall request would never reach a worker to prove
            // containment (the `ospace-serve --chaos` gate covers the
            // combined overload + faults regime).
            let cfg = ServerConfig {
                workers: 4,
                queue_cap: sc.requests.max(4),
                admission_guard: false,
                fault_model: chaos_faults(sc.seed),
                ..ServerConfig::default()
            };
            drive("chaos", cfg, &sc, &opts, |s| {
                if s.failed == 0 {
                    return Err("panic injection was on but no request failed".to_string());
                }
                if s.timed_out == 0 {
                    return Err("stall injection was on but nothing timed out".to_string());
                }
                Ok(())
            })
        });
    }

    runner.finalize()
}
