//! Table 6 + §7.4: power and area estimates, GFLOPS/W, and the perf/W
//! comparison against the K40.
//!
//! Paper values: 86.74 mm² total area, 23.99 W total power (14.60 W of it
//! HBM), 0.12 GFLOPS/W average, and ≈150× better GFLOPS/W than the K40
//! (which measured 85 W while averaging 0.067 GFLOPS → 0.8 MFLOPS/W).

use outerspace::energy::AreaPowerModel;
use outerspace::prelude::*;
use outerspace::sim::xmodels::{gpu::row_imbalance, GpuModel};

use crate::runner::{field_f64, CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "table6";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 300.0 };

struct SampleRow {
    name: &'static str,
    gflops: f64,
    power_w: f64,
    gflops_per_watt: f64,
    k40_mflops_per_watt: f64,
}

outerspace_json::impl_to_json!(SampleRow { name, gflops, power_w, gflops_per_watt, k40_mflops_per_watt });

/// Runs the Table 6 / §7.4 study through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);

    // --- Static Table 6 (paper's assumed suite-average activity). ---
    runner.run_case("static", move || -> CaseResult<outerspace::energy::Table6> {
        let model = AreaPowerModel::tsmc32nm();
        let cfg = OuterSpaceConfig::default();
        let t6 = model.table6(&cfg, None);
        println!("# Table 6 reproduction (32 nm)");
        println!("{:<28} {:>10} {:>10}   paper", "component", "area mm^2", "power W");
        let paper = [(49.14, 7.98), (34.40, 0.82), (3.13, 0.06), (0.07, 0.53), (f64::NAN, 14.60)];
        for (c, p) in t6.components.iter().zip(paper) {
            println!(
                "{:<28} {:>10} {:>10.2}   ({}, {:.2})",
                c.name,
                c.area_mm2.map(|a| format!("{a:.2}")).unwrap_or_else(|| "N/A".into()),
                c.power_w,
                if p.0.is_nan() { "N/A".into() } else { format!("{:.2}", p.0) },
                p.1
            );
        }
        println!(
            "{:<28} {:>10.2} {:>10.2}   (86.74, 23.99)",
            "Total",
            t6.total_area_mm2(),
            t6.total_power_w()
        );
        Ok(t6)
    });

    // --- Measured-activity power + GFLOPS/W on a suite sample. ---
    println!("\n# measured-activity energy on suite samples (scale {}x)", opts.scale);
    for name in ["email-Enron", "poisson3Da", "wiki-Vote", "facebook", "p2p-Gnutella31", "webbase-1M"] {
        let seed = opts.seed;
        let base_scale = opts.scale;
        runner.run_case(&format!("sample-{name}"), move || -> CaseResult<SampleRow> {
            let model = AreaPowerModel::tsmc32nm();
            let cfg = OuterSpaceConfig::default();
            let sim = Simulator::new(cfg.clone()).expect("valid config");
            let e = outerspace::gen::suite::by_name(name)
                .ok_or_else(|| format!("matrix '{name}' missing from the suite"))?;
            let scale = ((e.dim / 20_000).max(1)) * base_scale;
            let a = e.generate_scaled(scale, seed);
            let (_, rep) = sim.spgemm(&a, &a).expect("square");
            let t6_run = model.table6(&cfg, Some(&rep));
            let ours = model.gflops_per_watt(&cfg, &rep);

            let (_, hash) = outerspace::baselines::hash::spgemm(&a, &a).expect("square");
            let t_gpu = GpuModel::tesla_k40()
                .cusparse_time(&hash, a.nrows() as u64, row_imbalance(&a, &a))
                .total();
            let gpu = hash.traffic.flops() as f64 / t_gpu / 1e9 / 85.0 * 1e3; // mW basis
            println!(
                "  {name:<14} {:>6.2} GFLOPS  {:>6.2} W  -> {:>6.3} GFLOPS/W (K40 model: {:.2} MFLOPS/W)",
                rep.gflops(),
                t6_run.total_power_w(),
                ours,
                gpu
            );
            Ok(SampleRow {
                name: e.name,
                gflops: rep.gflops(),
                power_w: t6_run.total_power_w(),
                gflops_per_watt: ours,
                k40_mflops_per_watt: gpu,
            })
        });
    }

    // Geometric means: the arithmetic mean is dominated by the regular
    // matrices where cuSPARSE does comparatively well.
    let gpw: Vec<f64> = runner
        .ok_values()
        .filter_map(|r| field_f64(r, "gflops_per_watt"))
        .collect();
    let gpu_mflops_w: Vec<f64> = runner
        .ok_values()
        .filter_map(|r| field_f64(r, "k40_mflops_per_watt"))
        .collect();
    if !gpw.is_empty() && !gpu_mflops_w.is_empty() {
        let ours_avg = gpw.iter().sum::<f64>() / gpw.len() as f64;
        let gpu_avg = (gpu_mflops_w.iter().map(|x| x.ln()).sum::<f64>()
            / gpu_mflops_w.len() as f64)
            .exp();
        println!(
            "\n# avg: {ours_avg:.3} GFLOPS/W (paper 0.12); perf/W advantage over K40 model: {:.0}x (paper ~150x)",
            ours_avg * 1e3 / gpu_avg
        );
    }
    runner.finalize()
}
