//! §4.3: format-conversion amortization over chained multiplications.
//!
//! "When matrices A and B are not available in the CC and CR formats ...
//! This is a one-time requirement for chained multiplication operations of
//! the type A×B×C..., since OuterSPACE can output the result in either CR
//! or CC formats. ... The requirement of conversion is obviated for
//! symmetric matrices."
//!
//! This study measures the conversion phase's share of total simulated time
//! as the chain grows (conversion paid once, at the head), and confirms the
//! symmetric-input exemption.

use outerspace::prelude::*;

use crate::runner::{field_f64, CaseResult, Runner, RunSummary};
use crate::{fmt_secs, HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "sec43";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 300.0 };

struct Row {
    chain_length: u32,
    total_s: f64,
    conversion_s: f64,
    conversion_pct: f64,
}

outerspace_json::impl_to_json!(Row { chain_length, total_s, conversion_s, conversion_pct });

struct SymRow {
    conversion_skipped: bool,
}

outerspace_json::impl_to_json!(SymRow { conversion_skipped });

/// Keeps the `k` largest-magnitude entries of each row.
fn sparsify_top_k(m: &Csr, k: usize) -> Csr {
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..m.nrows() {
        let (rc, rv) = m.row(i);
        let mut entries: Vec<(u32, f64)> =
            rc.iter().copied().zip(rv.iter().copied()).collect();
        entries.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
        entries.truncate(k);
        entries.sort_by_key(|&(c, _)| c);
        for (c, v) in entries {
            cols.push(c);
            vals.push(v);
        }
        row_ptr.push(cols.len());
    }
    Csr::new(m.nrows(), m.ncols(), row_ptr, cols, vals).expect("valid by construction")
}

/// Runs the §4.3 conversion-amortization study through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    let n = 4096 / opts.scale;

    println!("# Section 4.3 reproduction: conversion amortization over chains");
    println!("# n = {n}, ~{} nnz per factor", 8 * n);
    println!("{:>6} {:>12} {:>12} {:>8}", "chain", "total", "conversion", "conv %");

    for len in 1..=8u32 {
        let seed = opts.seed;
        runner.run_case(&format!("chain{len}"), move || -> CaseResult<Row> {
            let sim = Simulator::new(OuterSpaceConfig::default()).expect("valid config");
            // Chain head: an asymmetric matrix that must be converted once.
            // Each subsequent factor multiplies on the right; the running
            // product is consumed in CC form (spgemm_cc_operand), so no
            // further conversions.
            let factors: Vec<Csr> = (0..len.max(2) as u64)
                .map(|i| outerspace::gen::uniform::matrix(n, n, 8 * n as usize, seed + i))
                .collect();
            let mut conversion_cycles = 0u64;
            let mut total_cycles = 0u64;
            // First product charges the conversion of the head factor.
            let (mut acc, rep) = sim
                .spgemm(&factors[0], &factors[1.min(len as usize - 1)])
                .expect("square");
            conversion_cycles += rep.convert.map(|c| c.cycles).unwrap_or(0);
            total_cycles += rep.total_cycles();
            // Remaining factors consume the CC-format running product directly.
            for f in factors.iter().take(len as usize).skip(2) {
                // Sparsify the running product (keep the strongest entries per
                // row) so the chain stays sparse, as iterative applications like
                // Markov clustering do between multiplications.
                acc = sparsify_top_k(&acc, 8);
                let (next, rep) = sim.spgemm_cc_operand(&acc.to_csc(), f).expect("square");
                assert!(rep.convert.is_none());
                total_cycles += rep.total_cycles();
                acc = next;
            }
            let cfg = OuterSpaceConfig::default();
            let row = Row {
                chain_length: len,
                total_s: cfg.cycles_to_seconds(total_cycles),
                conversion_s: cfg.cycles_to_seconds(conversion_cycles),
                conversion_pct: 100.0 * conversion_cycles as f64 / total_cycles.max(1) as f64,
            };
            println!(
                "{:>6} {:>12} {:>12} {:>7.1}%",
                row.chain_length,
                fmt_secs(row.total_s),
                fmt_secs(row.conversion_s),
                row.conversion_pct
            );
            Ok(row)
        });
    }

    // Symmetric exemption.
    {
        let seed = opts.seed;
        runner.run_case("symmetric", move || -> CaseResult<SymRow> {
            let sim = Simulator::new(OuterSpaceConfig::default()).expect("valid config");
            let sym = outerspace::gen::rmat::graph500(n, 6 * n as usize, seed);
            let (_, rep) = sim.spgemm(&sym, &sym).expect("square");
            println!(
                "# symmetric input: conversion phase {} (paper: obviated entirely)",
                if rep.convert.is_none() { "skipped" } else { "charged!" }
            );
            Ok(SymRow { conversion_skipped: rep.convert.is_none() })
        });
    }

    let pcts: Vec<f64> = runner
        .ok_values()
        .filter(|r| r.get("chain_length").is_some())
        .filter_map(|r| field_f64(r, "conversion_pct"))
        .collect();
    if pcts.len() >= 2 && pcts.last() >= pcts.first() {
        println!(
            "# WARNING: conversion share did not shrink with chain length \
             ({:.1}% -> {:.1}%) — expected amortization (§4.3)",
            pcts[0],
            pcts[pcts.len() - 1]
        );
    }
    runner.finalize()
}
