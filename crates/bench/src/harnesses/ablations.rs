//! Ablation sweeps over the design choices DESIGN.md §6 calls out:
//! merge-phase PE count (§6 picked 8 of 16), scratchpad size (§5.4.2),
//! outstanding-queue depth, L0 capacity, streaming vs sort-based merge,
//! and HBM bandwidth.

use std::sync::Arc;

use outerspace::outer::MergeKind;
use outerspace::prelude::*;

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{fmt_secs, HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "ablations";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 600.0 };

struct Point {
    study: &'static str,
    setting: String,
    seconds: f64,
    merge_seconds: f64,
    hbm_gb: f64,
    l0_hit_rate: f64,
}

outerspace_json::impl_to_json!(Point { study, setting, seconds, merge_seconds, hbm_gb, l0_hit_rate });

struct SwMerge {
    streaming_s: f64,
    streaming_sort_steps: u64,
    sort_based_s: f64,
    sort_based_sort_steps: u64,
}

outerspace_json::impl_to_json!(SwMerge { streaming_s, streaming_sort_steps, sort_based_s, sort_based_sort_steps });

fn measure(cfg: OuterSpaceConfig, a: &Csr, study: &'static str, setting: String) -> Point {
    let sim = Simulator::new(cfg).expect("config valid");
    let (_, rep) = sim.spgemm(a, a).expect("square");
    let p = Point {
        study,
        setting,
        seconds: rep.seconds(),
        merge_seconds: rep.config.cycles_to_seconds(rep.merge.cycles),
        hbm_gb: rep.hbm_bytes() as f64 / 1e9,
        l0_hit_rate: rep.multiply.l0_hit_rate(),
    };
    println!(
        "{:<22} {:<14} {:>10} {:>10} {:>9.3} {:>7.3}",
        p.study,
        p.setting,
        fmt_secs(p.seconds),
        fmt_secs(p.merge_seconds),
        p.hbm_gb,
        p.l0_hit_rate
    );
    p
}

/// Runs the ablation sweeps through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    // A mid-size power-law workload stresses every knob (deep fan-in rows,
    // shared hub columns). Shared read-only across the case closures.
    let a = Arc::new(outerspace::gen::powerlaw::graph(
        16_384 / opts.scale,
        120_000 / opts.scale as usize,
        opts.seed,
    ));
    println!(
        "# Ablations on a power-law workload: {} rows, {} nnz",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:<22} {:<14} {:>10} {:>10} {:>9} {:>7}",
        "study", "setting", "total", "merge", "HBM GB", "L0 hit"
    );

    let base = OuterSpaceConfig::default();

    for active in [4u32, 8, 16] {
        let (a, base) = (a.clone(), base.clone());
        runner.run_case(&format!("merge-pes-{active}"), move || -> CaseResult<Point> {
            let mut cfg = base;
            cfg.merge_active_pes_per_tile = active;
            Ok(measure(cfg, &a, "merge PEs/tile", format!("{active} (paper: 8)")))
        });
    }
    for bytes in [256u32, 1024, 2048, 8192] {
        let (a, base) = (a.clone(), base.clone());
        runner.run_case(&format!("scratchpad-{bytes}"), move || -> CaseResult<Point> {
            let mut cfg = base;
            cfg.merge_scratchpad_bytes = bytes;
            Ok(measure(cfg, &a, "merge scratchpad", format!("{bytes} B (paper: 2048)")))
        });
    }
    for q in [4u32, 16, 64, 256] {
        let (a, base) = (a.clone(), base.clone());
        runner.run_case(&format!("queue-{q}"), move || -> CaseResult<Point> {
            let mut cfg = base;
            cfg.outstanding_requests = q;
            Ok(measure(cfg, &a, "outstanding queue", format!("{q} (paper: 64)")))
        });
    }
    for kb in [2u32, 8, 16, 64] {
        let (a, base) = (a.clone(), base.clone());
        runner.run_case(&format!("l0-{kb}k"), move || -> CaseResult<Point> {
            let mut cfg = base;
            cfg.l0_multiply_bytes = kb * 1024;
            Ok(measure(cfg, &a, "L0 capacity", format!("{kb} kB (paper: 16)")))
        });
    }
    for mb in [2000u32, 4000, 8000, 16000] {
        let (a, base) = (a.clone(), base.clone());
        runner.run_case(&format!("hbm-{mb}"), move || -> CaseResult<Point> {
            let mut cfg = base;
            cfg.hbm_channel_mb_per_sec = mb;
            Ok(measure(cfg, &a, "HBM ch. bandwidth", format!("{mb} MB/s (paper: 8000)")))
        });
    }

    // Software merge-kind ablation (sort-based vs streaming, §5.4.2).
    {
        let a = a.clone();
        runner.run_case("sw-merge", move || -> CaseResult<SwMerge> {
            let t0 = std::time::Instant::now();
            let (_, s1) = outerspace::outer::spgemm_with_stats(&a, &a, MergeKind::Streaming)
                .expect("square");
            let t_stream = t0.elapsed();
            let t1 = std::time::Instant::now();
            let (_, s2) =
                outerspace::outer::spgemm_with_stats(&a, &a, MergeKind::SortBased).expect("square");
            let t_sort = t1.elapsed();
            println!(
                "\n# merge algorithm (software): streaming {} ({} sort steps) vs sort-based {} ({} sort steps)",
                fmt_secs(t_stream.as_secs_f64()),
                s1.merge.sort_steps,
                fmt_secs(t_sort.as_secs_f64()),
                s2.merge.sort_steps
            );
            Ok(SwMerge {
                streaming_s: t_stream.as_secs_f64(),
                streaming_sort_steps: s1.merge.sort_steps,
                sort_based_s: t_sort.as_secs_f64(),
                sort_based_sort_steps: s2.merge.sort_steps,
            })
        });
    }
    runner.finalize()
}
