//! Design-space exploration harness: drives the bundled `outerspace-dse`
//! parameter spaces (the CI `smoke` grid, the §7.3 α sweep, the §8 scaling
//! study, the SpArch head-to-head, and the `.mtx` fixture corpus) through
//! the crash-safe runner.
//!
//! Each spec is one runner case: expand the space, fan it over a
//! work-stealing worker pool with the content-addressed sim cache under
//! `<out>/dse_cache/`, then emit the Pareto/sensitivity report to
//! `<out>/dse_<spec>_pareto.json`. The Pareto file contains no wall-clock
//! fields and is written in fixed field order, so two runs of the same spec
//! and seed produce byte-identical files — the property `ci.sh` diffs. The
//! point-level cache also makes the sweep resumable: a rerun (or a crash
//! recovery) re-simulates only points that never completed.
//!
//! The sweep can route through any [`dse::EvalTier`] (full, trace-replay,
//! interval); interval-tier runs can additionally validate a deterministic
//! sample against full-fidelity reruns and emit a *tier report*
//! (`dse_<spec>_tiers.json`) carrying the calibrated error distribution,
//! points-per-CPU-hour, and the measured full-vs-tier speedup. Wall-clock
//! numbers live only in that report and on stdout — never in the Pareto
//! file.

use std::path::{Path, PathBuf};
use std::time::Instant;

use outerspace::dse::{self, SimCache, SpaceSpec};
use outerspace_json::{dump, Json};

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "dse";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 1200.0 };

/// Tier routing and validation options for one sweep (the harness-level
/// wrapper around [`dse::SweepOptions`]).
#[derive(Debug, Clone, Default)]
pub struct TierRun {
    /// Tier, early-abort, and interval sampling options.
    pub sweep: dse::SweepOptions,
    /// Validate every point with `fnv64(index) % N == 0` against a full
    /// rerun (interval tier only); 0 disables validation.
    pub validate_every: usize,
    /// Where the tier report goes (`None` = `<out>/dse_<spec>_tiers.json`
    /// when validation runs, nothing otherwise).
    pub tiers_path: Option<PathBuf>,
}

/// One spec's sweep summary row. Deliberately wall-clock-free: rows feed
/// the runner manifest, which must stay byte-deterministic.
pub struct Row {
    /// Spec name.
    pub spec: String,
    /// Evaluation tier tag.
    pub tier: String,
    /// Expanded points.
    pub points: u64,
    /// Points simulated this run.
    pub simulated: u64,
    /// Points served from the memo cache.
    pub cache_hits: u64,
    /// Points whose config failed `validate()`.
    pub invalid: u64,
    /// Points killed by the dominance early-abort.
    pub aborted: u64,
    /// Points that errored or panicked.
    pub failed: u64,
    /// Distinct configs after aggregation.
    pub configs: u64,
    /// Configs on the Pareto frontier.
    pub frontier: u64,
    /// Where the paper default landed: `on_frontier` / `dominated` / `absent`.
    pub default_config: String,
    /// Where the Pareto report was written.
    pub pareto_path: String,
}

outerspace_json::impl_to_json!(Row {
    spec,
    tier,
    points,
    simulated,
    cache_hits,
    invalid,
    aborted,
    failed,
    configs,
    frontier,
    default_config,
    pareto_path,
});

/// Default worker count: one per core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Expands and sweeps one spec through its tier, writes its Pareto report
/// (and, when validation ran, the tier report), and returns the summary
/// row. Shared by this harness and the `dse` binary.
///
/// # Errors
///
/// Expansion failures (bad spec), cache I/O errors, validation and
/// report-write failures — all as case-skipping strings.
pub fn sweep_spec(
    spec: &SpaceSpec,
    opts: &HarnessOpts,
    samples: Option<usize>,
    threads: usize,
    cache_dir: &Path,
    pareto_path: &Path,
    tier_run: &TierRun,
) -> CaseResult<Row> {
    let scaled = if opts.full { spec.clone() } else { spec.scaled(opts.scale) };
    let points = scaled.expand(samples, opts.seed)?;
    let mut cache = SimCache::open(cache_dir).map_err(|e| format!("open sim cache: {e}"))?;
    let t0 = Instant::now();
    let sweep = dse::run_sweep_opts(&points, &mut cache, threads, &tier_run.sweep);
    let sweep_wall_s = t0.elapsed().as_secs_f64();
    let report = dse::analyze(&points, &sweep.outcomes);

    let mut pareto = report.to_json().to_string_pretty();
    pareto.push('\n');
    dump::write_atomic(pareto_path, &pareto)
        .map_err(|e| format!("write {}: {e}", pareto_path.display()))?;

    let default_config = match &report.default_status {
        dse::DefaultStatus::Absent => "absent".to_string(),
        dse::DefaultStatus::OnFrontier => "on_frontier".to_string(),
        dse::DefaultStatus::DominatedBy(ids) => format!("dominated_by:{ids:?}"),
    };
    let row = Row {
        spec: scaled.name.clone(),
        tier: tier_run.sweep.tier.tag().to_string(),
        points: points.len() as u64,
        simulated: sweep.simulated as u64,
        cache_hits: sweep.cache_hits as u64,
        invalid: sweep.invalid as u64,
        aborted: sweep.aborted as u64,
        failed: sweep.failed as u64,
        configs: report.configs.len() as u64,
        frontier: report.frontier.len() as u64,
        default_config,
        pareto_path: pareto_path.display().to_string(),
    };
    print_row(&row, &sweep);

    if tier_run.validate_every > 0 {
        let validation =
            dse::validate_interval(&points, &sweep.outcomes, &mut cache, tier_run.validate_every)?;
        let tiers_path = tier_run.tiers_path.clone().unwrap_or_else(|| {
            opts.out_dir.join(format!("dse_{}_tiers.json", scaled.name))
        });
        let tier_json = tier_report_json(&row, &sweep, sweep_wall_s, &validation);
        let mut text = tier_json.to_string_pretty();
        text.push('\n');
        dump::write_atomic(&tiers_path, &text)
            .map_err(|e| format!("write {}: {e}", tiers_path.display()))?;
        print_tier_report(&tier_json, &tiers_path);
    }
    Ok(row)
}

/// Assembles the tier report: the sweep's accounting, the wall-clock
/// economics (points-per-CPU-hour, measured full-sim cost, speedup), and
/// the validation block.
fn tier_report_json(
    row: &Row,
    sweep: &dse::SweepResult,
    sweep_wall_s: f64,
    validation: &dse::TierValidation,
) -> Json {
    let evaluated = (sweep.simulated + sweep.cache_hits) as u64;
    let tier_per_point_s =
        if sweep.simulated > 0 { sweep_wall_s / sweep.simulated as f64 } else { 0.0 };
    let points_per_cpu_hour =
        if tier_per_point_s > 0.0 { 3600.0 / tier_per_point_s } else { 0.0 };
    let full_per_point_s = if validation.full_timed > 0 {
        validation.full_wall_s / validation.full_timed as f64
    } else {
        0.0
    };
    let speedup = if tier_per_point_s > 0.0 && full_per_point_s > 0.0 {
        full_per_point_s / tier_per_point_s
    } else {
        0.0
    };
    Json::Obj(vec![
        ("spec".into(), Json::Str(row.spec.clone())),
        ("tier".into(), Json::Str(row.tier.clone())),
        ("points".into(), Json::UInt(row.points)),
        ("evaluated".into(), Json::UInt(evaluated)),
        ("simulated".into(), Json::UInt(row.simulated)),
        ("cache_hits".into(), Json::UInt(row.cache_hits)),
        ("aborted".into(), Json::UInt(row.aborted)),
        ("invalid".into(), Json::UInt(row.invalid)),
        ("failed".into(), Json::UInt(row.failed)),
        ("sweep_wall_s".into(), Json::Float(sweep_wall_s)),
        ("tier_per_point_s".into(), Json::Float(tier_per_point_s)),
        ("points_per_cpu_hour".into(), Json::Float(points_per_cpu_hour)),
        ("full_per_point_s".into(), Json::Float(full_per_point_s)),
        ("speedup_vs_full".into(), Json::Float(speedup)),
        ("validation".into(), validation.to_json()),
    ])
}

fn print_tier_report(tier_json: &Json, path: &Path) {
    let f = |k: &str| tier_json.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let v = tier_json.get("validation");
    let vf = |k: &str| v.and_then(|j| j.get(k)).and_then(Json::as_f64).unwrap_or(0.0);
    let vu = |k: &str| v.and_then(|j| j.get(k)).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "#   tier economics: {:.1} points/cpu-hour ({:.3}s/point) vs full {:.3}s/point \
         => {:.1}x speedup",
        f("points_per_cpu_hour"),
        f("tier_per_point_s"),
        f("full_per_point_s"),
        f("speedup_vs_full"),
    );
    println!(
        "#   tier validation: {} points | median |cycle err| {:.2}% | {:.0}% within bars | {}",
        vu("validated"),
        100.0 * vf("median_abs_err"),
        100.0 * vf("within_bars_frac"),
        path.display()
    );
}

fn print_row(row: &Row, sweep: &dse::SweepResult) {
    println!(
        "# dse spec {}: {} points | {} simulated, {} cache hits ({:.0}% hit rate), \
         {} invalid, {} failed, {} aborted [tier {}]",
        row.spec,
        row.points,
        row.simulated,
        row.cache_hits,
        100.0 * sweep.hit_rate(),
        row.invalid,
        row.failed,
        row.aborted,
        row.tier,
    );
    println!(
        "#   accounting: {} evaluated + {} aborted + {} invalid + {} failed == {} points: {}",
        row.simulated + row.cache_hits,
        row.aborted,
        row.invalid,
        row.failed,
        row.points,
        if row.simulated + row.cache_hits + row.aborted + row.invalid + row.failed == row.points
        {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "#   pareto: {} of {} configs on the frontier | default config {} | {}",
        row.frontier, row.configs, row.default_config, row.pareto_path
    );
}

/// Location of the shared point cache under the output directory.
pub fn cache_dir(opts: &HarnessOpts) -> PathBuf {
    opts.out_dir.join("dse_cache")
}

/// Runs every bundled space through the crash-safe runner (full tier).
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    println!(
        "# design-space exploration over the bundled specs (scale {}x, {} workers)",
        opts.scale,
        default_threads()
    );
    for &name in SpaceSpec::BUNDLED {
        let case_opts = opts.clone();
        runner.run_case(name, move || -> CaseResult<Row> {
            let spec = SpaceSpec::bundled(name).ok_or("bundled spec vanished")?;
            let pareto_path = case_opts.out_dir.join(format!("dse_{name}_pareto.json"));
            sweep_spec(
                &spec,
                &case_opts,
                None,
                default_threads(),
                &cache_dir(&case_opts),
                &pareto_path,
                &TierRun::default(),
            )
        });
    }
    runner.finalize()
}
