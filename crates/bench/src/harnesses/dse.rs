//! Design-space exploration harness: drives the bundled `outerspace-dse`
//! parameter spaces (the CI `smoke` grid, the §7.3 α sweep, the §8 scaling
//! study) through the crash-safe runner.
//!
//! Each spec is one runner case: expand the space, fan it over a
//! work-stealing worker pool with the content-addressed sim cache under
//! `<out>/dse_cache/`, then emit the Pareto/sensitivity report to
//! `<out>/dse_<spec>_pareto.json`. The Pareto file contains no wall-clock
//! fields and is written in fixed field order, so two runs of the same spec
//! and seed produce byte-identical files — the property `ci.sh` diffs. The
//! point-level cache also makes the sweep resumable: a rerun (or a crash
//! recovery) re-simulates only points that never completed.

use std::path::{Path, PathBuf};

use outerspace::dse::{self, SimCache, SpaceSpec};
use outerspace_json::dump;

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "dse";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 1200.0 };

/// One spec's sweep summary row.
pub struct Row {
    /// Spec name.
    pub spec: String,
    /// Expanded points.
    pub points: u64,
    /// Points simulated this run.
    pub simulated: u64,
    /// Points served from the memo cache.
    pub cache_hits: u64,
    /// Points whose config failed `validate()`.
    pub invalid: u64,
    /// Points that errored or panicked.
    pub failed: u64,
    /// Distinct configs after aggregation.
    pub configs: u64,
    /// Configs on the Pareto frontier.
    pub frontier: u64,
    /// Where the paper default landed: `on_frontier` / `dominated` / `absent`.
    pub default_config: String,
    /// Where the Pareto report was written.
    pub pareto_path: String,
}

outerspace_json::impl_to_json!(Row {
    spec,
    points,
    simulated,
    cache_hits,
    invalid,
    failed,
    configs,
    frontier,
    default_config,
    pareto_path,
});

/// Default worker count: one per core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Expands and sweeps one spec, writes its Pareto report, and returns the
/// summary row. Shared by this harness and the `dse` binary.
///
/// # Errors
///
/// Expansion failures (bad spec), cache I/O errors, and Pareto-write
/// failures — all as case-skipping strings.
pub fn sweep_spec(
    spec: &SpaceSpec,
    opts: &HarnessOpts,
    samples: Option<usize>,
    threads: usize,
    cache_dir: &Path,
    pareto_path: &Path,
) -> CaseResult<Row> {
    let scaled = if opts.full { spec.clone() } else { spec.scaled(opts.scale) };
    let points = scaled.expand(samples, opts.seed)?;
    let mut cache = SimCache::open(cache_dir).map_err(|e| format!("open sim cache: {e}"))?;
    let sweep = dse::run_sweep(&points, &mut cache, threads);
    let report = dse::analyze(&points, &sweep.outcomes);

    let mut pareto = report.to_json().to_string_pretty();
    pareto.push('\n');
    dump::write_atomic(pareto_path, &pareto)
        .map_err(|e| format!("write {}: {e}", pareto_path.display()))?;

    let default_config = match &report.default_status {
        dse::DefaultStatus::Absent => "absent".to_string(),
        dse::DefaultStatus::OnFrontier => "on_frontier".to_string(),
        dse::DefaultStatus::DominatedBy(ids) => format!("dominated_by:{ids:?}"),
    };
    let row = Row {
        spec: scaled.name.clone(),
        points: points.len() as u64,
        simulated: sweep.simulated as u64,
        cache_hits: sweep.cache_hits as u64,
        invalid: sweep.invalid as u64,
        failed: sweep.failed as u64,
        configs: report.configs.len() as u64,
        frontier: report.frontier.len() as u64,
        default_config,
        pareto_path: pareto_path.display().to_string(),
    };
    print_row(&row, &sweep);
    Ok(row)
}

fn print_row(row: &Row, sweep: &dse::SweepResult) {
    println!(
        "# dse spec {}: {} points | {} simulated, {} cache hits ({:.0}% hit rate), \
         {} invalid, {} failed",
        row.spec,
        row.points,
        row.simulated,
        row.cache_hits,
        100.0 * sweep.hit_rate(),
        row.invalid,
        row.failed,
    );
    println!(
        "#   pareto: {} of {} configs on the frontier | default config {} | {}",
        row.frontier, row.configs, row.default_config, row.pareto_path
    );
}

/// Location of the shared point cache under the output directory.
pub fn cache_dir(opts: &HarnessOpts) -> PathBuf {
    opts.out_dir.join("dse_cache")
}

/// Runs every bundled space through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    println!(
        "# design-space exploration over the bundled specs (scale {}x, {} workers)",
        opts.scale,
        default_threads()
    );
    for &name in SpaceSpec::BUNDLED {
        let case_opts = opts.clone();
        runner.run_case(name, move || -> CaseResult<Row> {
            let spec = SpaceSpec::bundled(name).ok_or("bundled spec vanished")?;
            let pareto_path = case_opts.out_dir.join(format!("dse_{name}_pareto.json"));
            sweep_spec(
                &spec,
                &case_opts,
                None,
                default_threads(),
                &cache_dir(&case_opts),
                &pareto_path,
            )
        });
    }
    runner.finalize()
}
