//! Fig. 7 + Table 4 + §7.1.2: speedups over MKL, cuSPARSE and CUSP on the
//! real-world matrix suite (synthetic stand-ins; see DESIGN.md §3), with
//! the throughput and bandwidth-utilization summary the section reports.
//!
//! Paper results: mean speedups 7.9× (MKL), 13.0× (cuSPARSE), 14.0× (CUSP);
//! average throughput 2.9 GFLOPS; multiply-phase bandwidth utilization
//! 59.5–68.9 %, merge-phase 46.5–64.8 %. Regular matrices (filter3D,
//! roadNet-CA) and m133-b3 show the smallest speedups.
//!
//! Pass `--table4` to print the suite inventory instead of running. All
//! flags — `--full`, `--table4`, `--resume`, `--max-case-secs` — are routed
//! through [`HarnessOpts`] so they compose.

use outerspace::gen::suite::TABLE4;

use crate::runner::{field_f64, CaseResult, Runner, RunSummary};
use crate::{fmt_secs, geomean, run_baselines, run_outerspace, HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "fig07";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 1, max_case_secs: 900.0 };

struct Row {
    name: &'static str,
    scale: u32,
    dim: u32,
    nnz: usize,
    gflops: f64,
    mult_bw_pct: f64,
    merge_bw_pct: f64,
    outerspace_s: f64,
    speedup_mkl: f64,
    speedup_cusparse: f64,
    speedup_cusp: f64,
}

outerspace_json::impl_to_json!(Row { name, scale, dim, nnz, gflops, mult_bw_pct, merge_bw_pct, outerspace_s, speedup_mkl, speedup_cusparse, speedup_cusp });

/// Prints the Table 4 suite inventory (`--table4`).
pub fn print_table4() {
    println!("{:<16} {:>9} {:>10} {:>7}  kind", "matrix", "dim", "nnz", "nnz/row");
    for e in TABLE4 {
        println!(
            "{:<16} {:>9} {:>10} {:>7.1}  {}",
            e.name,
            e.dim,
            e.nnz,
            e.nnz_per_row(),
            e.kind
        );
    }
}

/// Runs the Fig. 7 suite sweep through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    if opts.table4 {
        print_table4();
        // Inventory mode runs no cases and writes no artifact.
        return Runner::new(NAME, &HarnessOpts { resume: false, ..opts.clone() })
            .finalize_without_write();
    }

    let mut runner = Runner::new(NAME, opts);
    println!("# Fig. 7 reproduction: speedups on the Table 4 suite (synthetic stand-ins)");
    println!(
        "{:<16} {:>5} {:>8} {:>9} | {:>7} {:>6} {:>6} | {:>10} | {:>6} {:>6} {:>6}",
        "matrix", "scale", "dim", "nnz", "GFLOPS", "mult%", "mrg%", "OuterSPACE", "xMKL",
        "xCUSPARSE", "xCUSP"
    );

    for e in TABLE4 {
        let case_opts = opts.clone();
        runner.run_case(e.name, move || -> CaseResult<Row> {
            // A flops-estimation failure is a structured skip, not an abort.
            let scale = super::suite_scale(e, &case_opts)?;
            let a = e.generate_scaled(scale, case_opts.seed);
            let rep = run_outerspace(&a);
            let base = run_baselines(&a);
            let ours = rep.seconds();
            let row = Row {
                name: e.name,
                scale,
                dim: a.nrows(),
                nnz: a.nnz(),
                gflops: rep.gflops(),
                mult_bw_pct: rep.multiply.bandwidth_utilization(&rep.config) * 100.0,
                merge_bw_pct: rep.merge.bandwidth_utilization(&rep.config) * 100.0,
                outerspace_s: ours,
                speedup_mkl: base.mkl_model_s / ours,
                speedup_cusparse: base.cusparse_model_s / ours,
                speedup_cusp: base.cusp_model_s / ours,
            };
            println!(
                "{:<16} {:>5} {:>8} {:>9} | {:>7.2} {:>6.1} {:>6.1} | {:>10} | {:>6.1} {:>6.1} {:>6.1}",
                row.name,
                row.scale,
                row.dim,
                row.nnz,
                row.gflops,
                row.mult_bw_pct,
                row.merge_bw_pct,
                fmt_secs(row.outerspace_s),
                row.speedup_mkl,
                row.speedup_cusparse,
                row.speedup_cusp,
            );
            Ok(row)
        });
    }

    let vals = |key: &str| -> Vec<f64> {
        runner.ok_values().filter_map(|r| field_f64(r, key)).collect()
    };
    let mkl = vals("speedup_mkl");
    let cus = vals("speedup_cusparse");
    let cusp = vals("speedup_cusp");
    let gflops = vals("gflops");
    let mult_bw = vals("mult_bw_pct");
    let merge_bw = vals("merge_bw_pct");
    let min_max =
        |v: &[f64]| (v.iter().cloned().fold(f64::MAX, f64::min), v.iter().cloned().fold(0.0, f64::max));
    if !gflops.is_empty() {
        println!("#");
        println!(
            "# geomean speedups: MKL {:.1}x (paper 7.9x), cuSPARSE {:.1}x (paper 13.0x), CUSP {:.1}x (paper 14.0x)",
            geomean(&mkl),
            geomean(&cus),
            geomean(&cusp)
        );
        println!(
            "# mean throughput: {:.2} GFLOPS (paper 2.9); mult BW {:.1}-{:.1}% (paper 59.5-68.9), merge BW {:.1}-{:.1}% (paper 46.5-64.8)",
            gflops.iter().sum::<f64>() / gflops.len() as f64,
            min_max(&mult_bw).0,
            min_max(&mult_bw).1,
            min_max(&merge_bw).0,
            min_max(&merge_bw).1,
        );
    }
    runner.finalize()
}
