//! Harness bodies, one module per figure/table artifact of the paper's
//! evaluation section.
//!
//! Each module exposes `NAME` (the artifact's JSON basename), `DEFAULTS`
//! (per-binary `--scale` / `--max-case-secs`), and `run(&HarnessOpts) ->
//! RunSummary`, which executes every benchmark case through the crash-safe
//! [`crate::runner`] layer. The thin `src/bin/*.rs` wrappers and the
//! consolidated `runall` driver both enter through [`ALL`], so a sweep can
//! be run per-figure or end-to-end with the same isolation, checkpointing,
//! and `--resume` semantics.

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

pub mod ablations;
pub mod dse;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig12;
pub mod fig_sparch;
pub mod kernels;
pub mod sec43;
pub mod sec73;
pub mod sec8;
pub mod serve;
pub mod table1;
pub mod table5;
pub mod table6;

/// A runnable harness: artifact name, per-binary defaults, the workload
/// divisor `runall --smoke` uses for its tiny-scale gate, and the entry
/// point.
pub struct Harness {
    /// Artifact basename (`<name>.json` under `--out`).
    pub name: &'static str,
    /// Defaults applied when `--scale` / `--max-case-secs` are absent.
    pub defaults: HarnessDefaults,
    /// Workload divisor used by `runall --smoke`.
    pub smoke_scale: u32,
    /// Entry point; runs every case and finalizes the JSON dump.
    pub run: fn(&HarnessOpts) -> RunSummary,
}

/// Every figure/table harness, in the order `runall` drives them.
pub const ALL: &[Harness] = &[
    Harness { name: fig03::NAME, defaults: fig03::DEFAULTS, smoke_scale: 64, run: fig03::run },
    Harness { name: table1::NAME, defaults: table1::DEFAULTS, smoke_scale: 256, run: table1::run },
    Harness { name: fig04::NAME, defaults: fig04::DEFAULTS, smoke_scale: 64, run: fig04::run },
    Harness { name: fig06::NAME, defaults: fig06::DEFAULTS, smoke_scale: 16, run: fig06::run },
    Harness { name: fig07::NAME, defaults: fig07::DEFAULTS, smoke_scale: 64, run: fig07::run },
    Harness { name: table5::NAME, defaults: table5::DEFAULTS, smoke_scale: 64, run: table5::run },
    Harness { name: table6::NAME, defaults: table6::DEFAULTS, smoke_scale: 32, run: table6::run },
    Harness { name: fig12::NAME, defaults: fig12::DEFAULTS, smoke_scale: 64, run: fig12::run },
    Harness {
        name: fig_sparch::NAME,
        defaults: fig_sparch::DEFAULTS,
        smoke_scale: fig_sparch::SMOKE_SCALE,
        run: fig_sparch::run,
    },
    Harness { name: sec73::NAME, defaults: sec73::DEFAULTS, smoke_scale: 64, run: sec73::run },
    Harness { name: sec43::NAME, defaults: sec43::DEFAULTS, smoke_scale: 16, run: sec43::run },
    Harness { name: sec8::NAME, defaults: sec8::DEFAULTS, smoke_scale: 32, run: sec8::run },
    Harness {
        name: ablations::NAME,
        defaults: ablations::DEFAULTS,
        smoke_scale: 16,
        run: ablations::run,
    },
    Harness { name: dse::NAME, defaults: dse::DEFAULTS, smoke_scale: 32, run: dse::run },
    Harness { name: serve::NAME, defaults: serve::DEFAULTS, smoke_scale: 4, run: serve::run },
    Harness {
        name: kernels::NAME,
        defaults: kernels::DEFAULTS,
        smoke_scale: kernels::DEFAULTS.scale,
        run: kernels::run,
    },
];

/// Looks a harness up by its artifact name.
pub fn by_name(name: &str) -> Option<&'static Harness> {
    ALL.iter().find(|h| h.name == name)
}

/// The deliberately faulty harness `runall --smoke` appends: one healthy
/// case and one injected panic, proving case isolation end-to-end in CI
/// (the driver must exit 0 with the failure recorded in the manifest).
pub const SMOKE_FAULT: Harness = Harness {
    name: "smoke_fault",
    defaults: HarnessDefaults { scale: 1, max_case_secs: 60.0 },
    smoke_scale: 1,
    run: smoke_fault,
};

fn smoke_fault(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(SMOKE_FAULT.name, opts);
    runner.run_case("healthy", || -> CaseResult<u64> { Ok(42) });
    runner.run_case("injected-panic", || -> CaseResult<u64> {
        panic!("injected smoke-test panic (expected: exercises case isolation)")
    });
    runner.finalize()
}

/// Picks a workload scale for a Table 4 suite entry: dimension capped near
/// 100 k rows and intermediate products capped so a full 20-matrix sweep
/// finishes in minutes. `--full` disables both caps; `--scale` multiplies
/// the result. A flops-estimation failure becomes a skip reason (`Err`)
/// instead of aborting the sweep.
pub(crate) fn suite_scale(
    e: &outerspace::gen::suite::SuiteEntry,
    opts: &HarnessOpts,
) -> Result<u32, String> {
    if opts.full {
        return Ok(1);
    }
    const PRODUCT_CAP: u64 = 50_000_000;
    let mut scale = (e.dim / 100_000).max(1) * opts.scale;
    for _ in 0..6 {
        let probe = e.generate_scaled(scale.min(e.dim / 2).max(1), opts.seed);
        let products = outerspace::sparse::ops::spgemm_flops(&probe, &probe)
            .map_err(|err| format!("cannot estimate products for {}: {err}", e.name))?
            / 2;
        if products <= PRODUCT_CAP {
            break;
        }
        let grow = (products as f64 / PRODUCT_CAP as f64).ceil() as u32;
        scale = (scale * grow.clamp(2, 16)).min(e.dim / 2).max(1);
    }
    Ok(scale.min(e.dim / 2).max(1))
}
