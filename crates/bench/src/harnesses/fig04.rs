//! Fig. 4: GPU outer-product implementation vs CUSP.
//!
//! "Comparison of a GPU outer product implementation against CUSP. The
//! matrices are uniform random with increasing size while density is
//! decreased, keeping the number of non-zeros constant at 1 million."
//!
//! Paper findings: the outer-product multiply phase streams fast and scales
//! roughly linearly with falling density, but total latency is dominated by
//! the merge phase, whose data-dependent branches diverge within warps —
//! so the GPU cannot convert the algorithm's reduced traffic into a win.
//!
//! Reproduction: the K40 SIMT model applied to the measured operation counts
//! of our software outer product (per phase) and the ESC/CUSP analog.

use outerspace::outer::MergeKind;
use outerspace::sim::xmodels::GpuModel;

use crate::runner::{field_f64, CaseResult, Runner, RunSummary};
use crate::{fmt_secs, HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "fig04";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 8, max_case_secs: 300.0 };

struct Row {
    n: u32,
    density: f64,
    gpu_outer_multiply_s: f64,
    gpu_outer_merge_s: f64,
    gpu_outer_total_s: f64,
    cusp_expand_s: f64,
    cusp_merge_s: f64,
    cusp_total_s: f64,
}

outerspace_json::impl_to_json!(Row { n, density, gpu_outer_multiply_s, gpu_outer_merge_s, gpu_outer_total_s, cusp_expand_s, cusp_merge_s, cusp_total_s });

/// Runs the Fig. 4 sweep through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    let nnz = 1_000_000 / opts.scale as usize;
    let dims: Vec<u32> =
        [32_768u32, 65_536, 131_072, 262_144, 524_288].iter().map(|d| d / opts.scale).collect();

    println!("# Fig. 4 reproduction: GPU outer product vs CUSP (K40 model)");
    println!("# nnz = {nnz} (scale {}x)", opts.scale);
    println!(
        "{:>9} {:>10} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "N", "density", "out-mult", "out-merge", "out-total", "cusp-exp", "cusp-mrg", "cusp-tot"
    );

    for n in dims {
        let seed = opts.seed;
        runner.run_case(&format!("n{n}"), move || -> CaseResult<Row> {
            let k40 = GpuModel::tesla_k40();
            let a = outerspace::gen::uniform::matrix(n, n, nnz, seed);
            let b = outerspace::gen::uniform::matrix(n, n, nnz, seed + 1);

            // Operation counts from the software outer product.
            let (_, rep) =
                outerspace::outer::spgemm_with_stats(&a, &b, MergeKind::Streaming).expect("shapes");
            let fanin = rep.multiply.chunks as f64 / a.nrows().max(1) as f64;
            let outer = k40.outer_product_time(
                rep.multiply.bytes_read,
                rep.multiply.elementary_products,
                rep.multiply.elementary_products,
                fanin,
            );

            // CUSP from the ESC analog's counters.
            let (_, esc) = outerspace::baselines::esc::spgemm(&a, &b).expect("shapes");
            let cusp = k40.cusp_time(&esc, a.nrows() as u64);

            let row = Row {
                n,
                density: a.density(),
                gpu_outer_multiply_s: outer.expand,
                gpu_outer_merge_s: outer.merge,
                gpu_outer_total_s: outer.total(),
                cusp_expand_s: cusp.expand,
                cusp_merge_s: cusp.merge,
                cusp_total_s: cusp.total(),
            };
            println!(
                "{:>9} {:>10.2e} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
                row.n,
                row.density,
                fmt_secs(row.gpu_outer_multiply_s),
                fmt_secs(row.gpu_outer_merge_s),
                fmt_secs(row.gpu_outer_total_s),
                fmt_secs(row.cusp_expand_s),
                fmt_secs(row.cusp_merge_s),
                fmt_secs(row.cusp_total_s),
            );
            Ok(row)
        });
    }

    let ok: Vec<_> = runner.ok_values().collect();
    let merge_dominated = ok
        .iter()
        .filter(|r| {
            field_f64(r, "gpu_outer_merge_s").unwrap_or(0.0)
                > field_f64(r, "gpu_outer_multiply_s").unwrap_or(0.0)
        })
        .count();
    println!(
        "# shape: outer-product merge phase dominates in {merge_dominated}/{} points \
         (the SIMD-divergence wall of Section 4.4.2)",
        ok.len()
    );
    runner.finalize()
}
