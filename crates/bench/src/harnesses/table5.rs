//! Table 5: sparse matrix-vector multiplication speedups.
//!
//! "Speedups of OuterSPACE over CPU (MKL) and GPU (cuSPARSE) for sparse
//! matrix-vector multiplication. The density of the vector (r) is varied
//! from 0.01 to 1.0. The sparse matrices contain uniformly random
//! distribution of one million non-zeros."
//!
//! Paper values: vs CPU 93.2→196.3× at r=0.01 falling to 0.8→1.7× at r=1.0;
//! vs GPU 92.5→154.4× falling to 2.2→3.8×. The headline shape: a 10×
//! reduction in vector density buys ≈10× speedup, and even dense vectors
//! stay within ~80 % of MKL.

use outerspace::prelude::*;
use outerspace::sim::xmodels::{CpuModel, GpuModel};

use crate::runner::{CaseResult, Runner, RunSummary};
use crate::{HarnessDefaults, HarnessOpts};

/// Artifact basename.
pub const NAME: &str = "table5";
/// Per-binary defaults.
pub const DEFAULTS: HarnessDefaults = HarnessDefaults { scale: 4, max_case_secs: 300.0 };

struct Row {
    dim: u32,
    speedup_cpu: [f64; 3],
    speedup_gpu: [f64; 3],
}

outerspace_json::impl_to_json!(Row { dim, speedup_cpu, speedup_gpu });

/// Runs the Table 5 SpMV study through the crash-safe runner.
pub fn run(opts: &HarnessOpts) -> RunSummary {
    let mut runner = Runner::new(NAME, opts);
    let nnz = 1_000_000 / opts.scale as usize;
    let dims: Vec<u32> =
        [65_536u32, 131_072, 262_144, 524_287].iter().map(|d| d / opts.scale).collect();

    println!("# Table 5 reproduction: SpMV speedups, nnz = {nnz} (scale {}x)", opts.scale);
    println!(
        "{:>9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "dim", "cpu r=.01", "r=.1", "r=1", "gpu r=.01", "r=.1", "r=1"
    );

    for n in dims {
        let seed = opts.seed;
        runner.run_case(&format!("n{n}"), move || -> CaseResult<Row> {
            let densities = [0.01f64, 0.1, 1.0];
            let sim = Simulator::new(OuterSpaceConfig::default()).expect("default config");
            let cpu = CpuModel::xeon_e5_1650_v4();
            let k40 = GpuModel::tesla_k40();
            let a = outerspace::gen::uniform::matrix(n, n, nnz, seed);
            let a_cc = a.to_csc();
            let matrix_bytes = 12 * a.nnz() as u64;
            let mut cpu_s = [0.0f64; 3];
            let mut gpu_s = [0.0f64; 3];
            for (i, &r) in densities.iter().enumerate() {
                let x = outerspace::gen::vector::sparse(n, r, seed + i as u64);
                let (_, rep) = sim.spmv(&a_cc, &x).expect("shapes ok");
                let ours = rep.seconds();
                // MKL treats the vector as dense: time independent of r (§7.2).
                let t_cpu = cpu.spmv_seconds(matrix_bytes, n as u64);
                // cuSPARSE scales compute with r but always streams the matrix.
                let (_, gstats) =
                    outerspace::baselines::spmv::spmv_index_match(&a, &x).expect("shapes ok");
                let t_gpu = k40.spmv_time(matrix_bytes, gstats.multiplies, n as u64);
                cpu_s[i] = t_cpu / ours;
                gpu_s[i] = t_gpu / ours;
            }
            println!(
                "{:>9} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1}",
                n, cpu_s[0], cpu_s[1], cpu_s[2], gpu_s[0], gpu_s[1], gpu_s[2]
            );
            Ok(Row { dim: n, speedup_cpu: cpu_s, speedup_gpu: gpu_s })
        });
    }

    // Scaling-law summary over rows that survived (possibly checkpoint-loaded).
    let ratios: Vec<f64> = runner
        .ok_values()
        .filter_map(|r| {
            let arr = r.get("speedup_cpu")?.as_array()?;
            Some(arr.first()?.as_f64()? / arr.get(1)?.as_f64()?)
        })
        .collect::<Vec<f64>>();
    if !ratios.is_empty() {
        let scaling = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "# shape: 10x density reduction buys ~{scaling:.1}x speedup (paper: ~10x); \
             paper r=.01 row: 93-196x CPU, 92-154x GPU"
        );
    }
    runner.finalize()
}
