//! Consolidated driver: runs every figure/table harness in-process — same
//! crash isolation, checkpointing, and `--resume` semantics as the
//! individual binaries — with bounded retry and a final pass/fail/skip
//! report.
//!
//! Flags:
//!
//! * `--smoke` — tiny-scale CI gate: each harness runs at its `smoke_scale`
//!   workload divisor, plus a deliberately faulty `smoke_fault` harness
//!   (one healthy case, one injected panic) proving that a panicking case is
//!   recorded instead of aborting the run.
//! * `--only NAME` (repeatable) — run a subset of harnesses.
//! * `--max-retries N` — re-drive a harness (with `--resume`, so finished
//!   cases are reused) up to `N` extra times while it still has
//!   panicked/timeout cases or crashed at driver level. Default 1.
//! * `--scale N`, `--full`, `--seed N`, `--out DIR`, `--resume`,
//!   `--max-case-secs S` — forwarded to every harness; `--scale` /
//!   `--max-case-secs` override the per-harness defaults.
//!
//! Exit status: 0 when every harness completed (case-level failures are
//! *recorded*, not fatal); 1 only if a harness crashed at driver level on
//! every attempt; 2 on a malformed command line.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;

use outerspace_bench::harnesses::{self, Harness};
use outerspace_bench::runner::git_rev;
use outerspace_bench::{HarnessOpts, UsageError};
use outerspace_json::{dump, Json, ToJson};

const USAGE: &str = "usage: runall [--smoke] [--only NAME]... [--max-retries N] [--scale N] \
     [--full] [--seed N] [--out DIR] [--resume] [--max-case-secs S]";

/// Driver-level options (the per-harness knobs stay `Option` so per-harness
/// defaults apply where the user did not override).
struct RunallOpts {
    smoke: bool,
    only: Vec<String>,
    max_retries: u32,
    scale: Option<u32>,
    full: bool,
    seed: u64,
    out_dir: PathBuf,
    resume: bool,
    max_case_secs: Option<f64>,
}

fn usage_error(message: impl Into<String>) -> UsageError {
    UsageError { message: message.into() }
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<RunallOpts, UsageError> {
    let mut o = RunallOpts {
        smoke: false,
        only: Vec::new(),
        max_retries: 1,
        scale: None,
        full: false,
        seed: 42,
        out_dir: PathBuf::from("bench_results"),
        resume: false,
        max_case_secs: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => o.smoke = true,
            "--only" => {
                let v = args.next().ok_or_else(|| usage_error("--only needs a harness name"))?;
                o.only.push(v);
            }
            "--max-retries" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_error("--max-retries needs a non-negative integer"))?;
                o.max_retries = v.parse().map_err(|_| {
                    usage_error(format!("--max-retries: '{v}' is not a non-negative integer"))
                })?;
            }
            "--scale" => {
                let v = args.next().ok_or_else(|| usage_error("--scale needs a positive integer"))?;
                let scale: u32 = v
                    .parse()
                    .map_err(|_| usage_error(format!("--scale: '{v}' is not a positive integer")))?;
                if scale == 0 {
                    return Err(usage_error("--scale must be at least 1"));
                }
                o.scale = Some(scale);
            }
            "--full" => o.full = true,
            "--seed" => {
                let v = args.next().ok_or_else(|| usage_error("--seed needs an integer"))?;
                o.seed = v
                    .parse()
                    .map_err(|_| usage_error(format!("--seed: '{v}' is not an integer")))?;
            }
            "--out" => {
                let v = args.next().ok_or_else(|| usage_error("--out needs a directory"))?;
                o.out_dir = PathBuf::from(v);
            }
            "--resume" => o.resume = true,
            "--max-case-secs" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_error("--max-case-secs needs a number of seconds"))?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| usage_error(format!("--max-case-secs: '{v}' is not a number")))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(usage_error("--max-case-secs must be a non-negative number"));
                }
                o.max_case_secs = Some(secs);
            }
            other => return Err(usage_error(format!("unknown argument '{other}'"))),
        }
    }
    Ok(o)
}

/// Final per-harness line of the consolidated report.
struct HarnessReport {
    harness: String,
    attempts: u32,
    total: usize,
    ok: usize,
    skipped: usize,
    panicked: usize,
    timeout: usize,
    cached: usize,
    wall_s: f64,
    crashed: bool,
    error: Option<String>,
    out_path: String,
}

outerspace_json::impl_to_json!(HarnessReport {
    harness,
    attempts,
    total,
    ok,
    skipped,
    panicked,
    timeout,
    cached,
    wall_s,
    crashed,
    error,
    out_path,
});

/// Smoke runs trade fidelity for speed: small default watchdog so a hung
/// case cannot stall CI for the per-binary default (up to 15 minutes).
const SMOKE_MAX_CASE_SECS: f64 = 120.0;

fn harness_opts(cli: &RunallOpts, h: &Harness) -> HarnessOpts {
    HarnessOpts {
        scale: cli.scale.unwrap_or(if cli.smoke { h.smoke_scale } else { h.defaults.scale }),
        seed: cli.seed,
        out_dir: cli.out_dir.clone(),
        full: cli.full,
        table4: false,
        resume: cli.resume,
        max_case_secs: cli
            .max_case_secs
            .unwrap_or(if cli.smoke { SMOKE_MAX_CASE_SECS } else { h.defaults.max_case_secs }),
    }
}

/// Drives one harness with bounded retry. Retries always set `--resume`, so
/// checkpointed `ok`/`skipped` cases are reused and only the failed or
/// unfinished ones re-execute.
fn drive(cli: &RunallOpts, h: &Harness) -> HarnessReport {
    let mut opts = harness_opts(cli, h);
    let attempts_max = 1 + cli.max_retries;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let run = h.run;
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run(&opts)));
        match outcome {
            Ok(summary) => {
                let failures = summary.failures();
                if failures > 0 && attempt < attempts_max {
                    eprintln!(
                        "# runall: {} has {failures} failed case(s); retrying with --resume \
                         (attempt {}/{attempts_max})",
                        h.name,
                        attempt + 1
                    );
                    opts.resume = true;
                    continue;
                }
                return HarnessReport {
                    harness: summary.harness,
                    attempts: attempt,
                    total: summary.total,
                    ok: summary.ok,
                    skipped: summary.skipped,
                    panicked: summary.panicked,
                    timeout: summary.timeout,
                    cached: summary.cached,
                    wall_s: summary.wall_s,
                    crashed: false,
                    error: summary.write_error,
                    out_path: summary.out_path,
                };
            }
            Err(payload) => {
                // A crash *outside* any case (workload generation in the
                // harness body, finalize, ...). Case-level panics never land
                // here — the runner catches them.
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic payload of unknown type".to_string());
                eprintln!("# runall: {} crashed at driver level: {msg}", h.name);
                if attempt < attempts_max {
                    eprintln!(
                        "# runall: retrying {} with --resume (attempt {}/{attempts_max})",
                        h.name,
                        attempt + 1
                    );
                    opts.resume = true;
                    continue;
                }
                return HarnessReport {
                    harness: h.name.to_string(),
                    attempts: attempt,
                    total: 0,
                    ok: 0,
                    skipped: 0,
                    panicked: 0,
                    timeout: 0,
                    cached: 0,
                    wall_s: 0.0,
                    crashed: true,
                    error: Some(msg),
                    out_path: String::new(),
                };
            }
        }
    }
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let mut lineup: Vec<&Harness> = harnesses::ALL.iter().collect();
    if cli.smoke {
        lineup.push(&harnesses::SMOKE_FAULT);
    }
    if !cli.only.is_empty() {
        for name in &cli.only {
            if !lineup.iter().any(|h| h.name == name) {
                eprintln!("error: --only: unknown harness '{name}'");
                eprintln!(
                    "known harnesses: {}",
                    lineup.iter().map(|h| h.name).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        }
        lineup.retain(|h| cli.only.iter().any(|n| n == h.name));
    }

    let started = std::time::Instant::now();
    let events_path = cli.out_dir.join("runall.events.jsonl");
    let mut reports: Vec<HarnessReport> = Vec::new();
    for (i, h) in lineup.iter().enumerate() {
        eprintln!("\n=== [{}/{}] {} ===", i + 1, lineup.len(), h.name);
        let report = drive(&cli, h);
        if let Err(e) = dump::append_jsonl(&events_path, &report.to_json()) {
            eprintln!("warning: cannot append to {}: {e}", events_path.display());
        }
        reports.push(report);
    }

    // --- Consolidated report. ---
    println!("\n# runall report");
    println!(
        "{:<14} {:>4} {:>4} {:>5} {:>5} {:>5} {:>7} {:>9}  status",
        "harness", "ok", "skip", "panic", "tmout", "cache", "tries", "wall"
    );
    let mut crashed = 0usize;
    let mut with_failures = 0usize;
    for r in &reports {
        let status = if r.crashed {
            crashed += 1;
            "CRASHED"
        } else if r.panicked + r.timeout > 0 {
            with_failures += 1;
            "FAILURES"
        } else {
            "pass"
        };
        println!(
            "{:<14} {:>4} {:>4} {:>5} {:>5} {:>5} {:>7} {:>8.1}s  {status}",
            r.harness, r.ok, r.skipped, r.panicked, r.timeout, r.cached, r.attempts, r.wall_s
        );
    }
    println!(
        "# {} harness(es): {} clean, {} with failed cases, {} crashed; total {:.1}s",
        reports.len(),
        reports.len() - with_failures - crashed,
        with_failures,
        crashed,
        started.elapsed().as_secs_f64()
    );

    let manifest = Json::Obj(vec![
        ("seed".into(), Json::UInt(cli.seed)),
        ("smoke".into(), Json::Bool(cli.smoke)),
        ("full".into(), Json::Bool(cli.full)),
        ("resume".into(), Json::Bool(cli.resume)),
        ("max_retries".into(), Json::UInt(cli.max_retries as u64)),
        ("git_rev".into(), Json::Str(git_rev())),
        ("wall_s".into(), Json::Float(started.elapsed().as_secs_f64())),
        ("harnesses_total".into(), Json::UInt(reports.len() as u64)),
        ("clean".into(), Json::UInt((reports.len() - with_failures - crashed) as u64)),
        ("with_failures".into(), Json::UInt(with_failures as u64)),
        ("crashed".into(), Json::UInt(crashed as u64)),
    ]);
    let doc = Json::Obj(vec![
        ("manifest".into(), manifest),
        ("harnesses".into(), Json::Arr(reports.iter().map(|r| r.to_json()).collect())),
    ]);
    let report_path = cli.out_dir.join("runall.json");
    match dump::write_json_atomic(&report_path, &doc) {
        Ok(()) => eprintln!("(consolidated report written to {})", report_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", report_path.display()),
    }

    // Case-level failures are recorded, not fatal; only a driver-level crash
    // that survived every retry fails the run.
    std::process::exit(if crashed > 0 { 1 } else { 0 });
}
