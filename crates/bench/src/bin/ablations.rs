//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::ablations`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::ablations;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(ablations::DEFAULTS);
    ablations::run(&opts);
}
