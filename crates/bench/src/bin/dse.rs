//! `dse` — design-space exploration driver.
//!
//! Sweeps a declarative parameter space over the OuterSPACE simulator,
//! memoizing every point in a content-addressed cache and emitting the
//! Pareto/sensitivity report. Rides the same crash-safe runner as the
//! figure harnesses, so `--resume` and the case manifest work identically.
//!
//! ```text
//! dse [--space NAME|FILE] [--samples N] [--threads N] [--pareto-out FILE]
//!     [--cache DIR] [--smoke] [--scale N] [--full] [--seed N] [--out DIR]
//!     [--resume] [--max-case-secs S]
//! ```
//!
//! * `--space` — a bundled spec (`smoke`, `sec73_alpha`, `sec8_scaling`) or
//!   a path to a spec JSON file. Default `smoke`.
//! * `--samples N` — override the spec's sample count (`0` = full grid).
//! * `--threads N` — worker threads (default: one per core).
//! * `--pareto-out FILE` — where the Pareto report goes (default
//!   `<out>/dse_<spec>_pareto.json`).
//! * `--cache DIR` — the memo cache directory (default `<out>/dse_cache`).
//! * `--smoke` — CI gate: run the bundled `smoke` grid unscaled and assert
//!   it has ≥ 64 points, includes the paper-default config, and produces a
//!   non-empty frontier; exit 1 on any violation.
//!
//! Exit status: 0 on success, 1 on a failed sweep or smoke assertion, 2 on
//! a malformed command line.

use std::path::PathBuf;
use std::process::ExitCode;

use outerspace::dse::SpaceSpec;
use outerspace::sim::OuterSpaceConfig;
use outerspace_bench::harnesses::dse;
use outerspace_bench::runner::Runner;
use outerspace_bench::{HarnessOpts, UsageError};
use outerspace_json::{Json, ToJson};

const USAGE: &str = "usage: dse [--space NAME|FILE] [--samples N] [--threads N] \
     [--pareto-out FILE] [--cache DIR] [--smoke] [--scale N] [--full] [--seed N] \
     [--out DIR] [--resume] [--max-case-secs S]";

struct DseArgs {
    space: String,
    samples: Option<usize>,
    threads: usize,
    pareto_out: Option<PathBuf>,
    cache: Option<PathBuf>,
    smoke: bool,
    harness: HarnessOpts,
}

fn usage_error(message: impl Into<String>) -> UsageError {
    UsageError { message: message.into() }
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<DseArgs, UsageError> {
    let mut space = "smoke".to_string();
    let mut samples = None;
    let mut threads = dse::default_threads();
    let mut pareto_out = None;
    let mut cache = None;
    let mut smoke = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--space" => {
                space = args.next().ok_or_else(|| usage_error("--space needs a name or file"))?;
            }
            "--samples" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_error("--samples needs a non-negative integer"))?;
                samples = Some(v.parse().map_err(|_| {
                    usage_error(format!("--samples: '{v}' is not a non-negative integer"))
                })?);
            }
            "--threads" => {
                let v =
                    args.next().ok_or_else(|| usage_error("--threads needs a positive integer"))?;
                threads = v.parse().map_err(|_| {
                    usage_error(format!("--threads: '{v}' is not a positive integer"))
                })?;
                if threads == 0 {
                    return Err(usage_error("--threads must be at least 1"));
                }
            }
            "--pareto-out" => {
                let v = args.next().ok_or_else(|| usage_error("--pareto-out needs a file"))?;
                pareto_out = Some(PathBuf::from(v));
            }
            "--cache" => {
                let v = args.next().ok_or_else(|| usage_error("--cache needs a directory"))?;
                cache = Some(PathBuf::from(v));
            }
            "--smoke" => smoke = true,
            other => rest.push(other.to_string()),
        }
    }
    let harness = HarnessOpts::parse(rest, dse::DEFAULTS)?;
    Ok(DseArgs { space, samples, threads, pareto_out, cache, smoke, harness })
}

fn load_spec(name_or_path: &str) -> Result<SpaceSpec, String> {
    if let Some(spec) = SpaceSpec::bundled(name_or_path) {
        return Ok(spec);
    }
    let text = std::fs::read_to_string(name_or_path)
        .map_err(|e| format!("'{name_or_path}' is not a bundled spec and not readable: {e}"))?;
    SpaceSpec::parse_str(&text)
}

fn smoke_gate(row: &Json, points: &[outerspace::dse::DsePoint]) -> Result<(), String> {
    let n = row.get("points").and_then(Json::as_u64).unwrap_or(0);
    if n < 64 {
        return Err(format!("smoke sweep has {n} points, needs >= 64"));
    }
    let default_canon = OuterSpaceConfig::default().to_json().to_string_compact();
    if !points.iter().any(|p| p.config_canonical() == default_canon) {
        return Err("smoke space does not include the paper-default config".into());
    }
    let frontier = row.get("frontier").and_then(Json::as_u64).unwrap_or(0);
    if frontier == 0 {
        return Err("smoke sweep produced an empty Pareto frontier".into());
    }
    if row.get("failed").and_then(Json::as_u64).unwrap_or(1) != 0 {
        return Err("smoke sweep had failed points".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut a = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if a.smoke {
        // The CI gate pins the spec and runs it unscaled so the point count
        // and the default-config membership are invariant.
        a.space = "smoke".to_string();
        a.harness.full = true;
    }
    let spec = match load_spec(&a.space) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let pareto_path = a
        .pareto_out
        .clone()
        .unwrap_or_else(|| a.harness.out_dir.join(format!("dse_{}_pareto.json", spec.name)));
    let cache_dir = a.cache.clone().unwrap_or_else(|| dse::cache_dir(&a.harness));

    println!(
        "# dse: space '{}' ({} axes, {} workloads), {} workers",
        spec.name,
        spec.axes.len(),
        spec.workloads.len(),
        a.threads
    );

    let mut runner = Runner::new("dse", &a.harness);
    let case_spec = spec.clone();
    let case_opts = a.harness.clone();
    let (samples, threads) = (a.samples, a.threads);
    let (case_cache, case_pareto) = (cache_dir.clone(), pareto_path.clone());
    let row = runner.run_case(&spec.name, move || {
        dse::sweep_spec(&case_spec, &case_opts, samples, threads, &case_cache, &case_pareto)
    });
    let summary = runner.finalize();

    let Some(row) = row else {
        eprintln!("error: sweep did not complete (see {})", summary.out_path);
        return ExitCode::from(1);
    };
    if a.smoke {
        // Re-expand for the membership check (cheap; simulation is cached).
        let scaled = if a.harness.full { spec.clone() } else { spec.scaled(a.harness.scale) };
        match scaled
            .expand(a.samples, a.harness.seed)
            .map_err(|e| e.to_string())
            .and_then(|points| smoke_gate(&row, &points))
        {
            Ok(()) => println!("# smoke gate: ok"),
            Err(e) => {
                eprintln!("error: smoke gate failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    // Standing of the default design, for the terminal reader.
    if let Some(status) = row.get("default_config").and_then(Json::as_str) {
        println!("# paper-default config: {status}");
    }
    ExitCode::SUCCESS
}
