//! `dse` — design-space exploration driver.
//!
//! Sweeps a declarative parameter space over the OuterSPACE simulator,
//! memoizing every point in a content-addressed cache and emitting the
//! Pareto/sensitivity report. Rides the same crash-safe runner as the
//! figure harnesses, so `--resume` and the case manifest work identically.
//!
//! ```text
//! dse [--space NAME|FILE] [--samples N] [--threads N] [--pareto-out FILE]
//!     [--cache DIR] [--smoke] [--tier full|trace|interval] [--abort]
//!     [--windows N] [--stride N] [--validate N] [--tiers-out FILE]
//!     [--min-speedup X] [--max-median-err X] [--min-within-bars X]
//!     [--scale N] [--full] [--seed N] [--out DIR] [--resume]
//!     [--max-case-secs S]
//! ```
//!
//! * `--space` — a bundled spec (`smoke`, `sec73_alpha`, `sec8_scaling`,
//!   `sparch_vs_ospace`, `fixtures`) or a path to a spec JSON file.
//!   Default `smoke`.
//! * `--samples N` — override the spec's sample count (`0` = full grid).
//! * `--threads N` — worker threads (default: one per core).
//! * `--pareto-out FILE` — where the Pareto report goes (default
//!   `<out>/dse_<spec>_pareto.json`).
//! * `--cache DIR` — the memo cache directory (default `<out>/dse_cache`).
//! * `--tier` — evaluation tier: `full` (exact, default), `trace`
//!   (trace-replay what-if), `interval` (sampled windows with error bars).
//! * `--abort` — dominance early-abort: kill points whose lower bounds are
//!   already Pareto-dominated (reported as explicit `aborted` outcomes).
//! * `--windows N` / `--stride N` — interval-tier sampling parameters.
//! * `--validate N` — validate every `fnv(index) % N == 0`-th interval
//!   point against a full-fidelity rerun and write the tier report
//!   (`--tiers-out`, default `<out>/dse_<spec>_tiers.json`).
//! * `--min-speedup X`, `--max-median-err X`, `--min-within-bars X` —
//!   tier gates checked against the tier report; exit 1 on violation.
//! * `--smoke` — CI gate: run the bundled `smoke` grid unscaled and assert
//!   it has ≥ 64 points, includes the paper-default config, produces a
//!   non-empty frontier, and satisfies the accounting identity
//!   (evaluated + aborted + invalid + failed == points); exit 1 on any
//!   violation.
//!
//! Exit status: 0 on success, 1 on a failed sweep, smoke assertion, or
//! tier gate, 2 on a malformed command line.

use std::path::PathBuf;
use std::process::ExitCode;

use outerspace::dse::{EvalTier, SpaceSpec};
use outerspace::sim::interval::IntervalOpts;
use outerspace::sim::OuterSpaceConfig;
use outerspace_bench::harnesses::dse;
use outerspace_bench::runner::Runner;
use outerspace_bench::{HarnessOpts, UsageError};
use outerspace_json::{Json, ToJson};

const USAGE: &str = "usage: dse [--space NAME|FILE] [--samples N] [--threads N] \
     [--pareto-out FILE] [--cache DIR] [--smoke] [--tier full|trace|interval] \
     [--abort] [--windows N] [--stride N] [--validate N] [--tiers-out FILE] \
     [--min-speedup X] [--max-median-err X] [--min-within-bars X] \
     [--scale N] [--full] [--seed N] [--out DIR] [--resume] [--max-case-secs S]";

struct DseArgs {
    space: String,
    samples: Option<usize>,
    threads: usize,
    pareto_out: Option<PathBuf>,
    cache: Option<PathBuf>,
    smoke: bool,
    tier_run: dse::TierRun,
    min_speedup: Option<f64>,
    max_median_err: Option<f64>,
    min_within_bars: Option<f64>,
    harness: HarnessOpts,
}

fn usage_error(message: impl Into<String>) -> UsageError {
    UsageError { message: message.into() }
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<DseArgs, UsageError> {
    let mut space = "smoke".to_string();
    let mut samples = None;
    let mut threads = dse::default_threads();
    let mut pareto_out = None;
    let mut cache = None;
    let mut smoke = false;
    let mut tier_run = dse::TierRun::default();
    let mut min_speedup = None;
    let mut max_median_err = None;
    let mut min_within_bars = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = args.into_iter();

    fn next_num<T: std::str::FromStr>(
        args: &mut impl Iterator<Item = String>,
        flag: &str,
        kind: &str,
    ) -> Result<T, UsageError> {
        let v = args.next().ok_or_else(|| usage_error(format!("{flag} needs {kind}")))?;
        v.parse().map_err(|_| usage_error(format!("{flag}: '{v}' is not {kind}")))
    }

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--space" => {
                space = args.next().ok_or_else(|| usage_error("--space needs a name or file"))?;
            }
            "--samples" => {
                samples = Some(next_num(&mut args, "--samples", "a non-negative integer")?);
            }
            "--threads" => {
                threads = next_num(&mut args, "--threads", "a positive integer")?;
                if threads == 0 {
                    return Err(usage_error("--threads must be at least 1"));
                }
            }
            "--pareto-out" => {
                let v = args.next().ok_or_else(|| usage_error("--pareto-out needs a file"))?;
                pareto_out = Some(PathBuf::from(v));
            }
            "--cache" => {
                let v = args.next().ok_or_else(|| usage_error("--cache needs a directory"))?;
                cache = Some(PathBuf::from(v));
            }
            "--smoke" => smoke = true,
            "--tier" => {
                let v = args.next().ok_or_else(|| usage_error("--tier needs a tier name"))?;
                tier_run.sweep.tier = EvalTier::parse(&v)
                    .ok_or_else(|| usage_error(format!("--tier: unknown tier '{v}'")))?;
            }
            "--abort" => tier_run.sweep.abort = true,
            "--windows" => {
                let w: u32 = next_num(&mut args, "--windows", "a positive integer")?;
                if w == 0 {
                    return Err(usage_error("--windows must be at least 1"));
                }
                tier_run.sweep.interval = IntervalOpts { windows: w, ..tier_run.sweep.interval };
            }
            "--stride" => {
                let s: u32 = next_num(&mut args, "--stride", "a positive integer")?;
                if s == 0 {
                    return Err(usage_error("--stride must be at least 1"));
                }
                tier_run.sweep.interval = IntervalOpts { stride: s, ..tier_run.sweep.interval };
            }
            "--validate" => {
                tier_run.validate_every =
                    next_num(&mut args, "--validate", "a positive integer")?;
                if tier_run.validate_every == 0 {
                    return Err(usage_error("--validate must be at least 1"));
                }
            }
            "--tiers-out" => {
                let v = args.next().ok_or_else(|| usage_error("--tiers-out needs a file"))?;
                tier_run.tiers_path = Some(PathBuf::from(v));
            }
            "--min-speedup" => {
                min_speedup = Some(next_num(&mut args, "--min-speedup", "a number")?);
            }
            "--max-median-err" => {
                max_median_err = Some(next_num(&mut args, "--max-median-err", "a number")?);
            }
            "--min-within-bars" => {
                min_within_bars = Some(next_num(&mut args, "--min-within-bars", "a number")?);
            }
            other => rest.push(other.to_string()),
        }
    }
    let harness = HarnessOpts::parse(rest, dse::DEFAULTS)?;
    if (min_speedup.is_some() || max_median_err.is_some() || min_within_bars.is_some())
        && tier_run.validate_every == 0
    {
        return Err(usage_error("tier gates need --validate N to produce a tier report"));
    }
    Ok(DseArgs {
        space,
        samples,
        threads,
        pareto_out,
        cache,
        smoke,
        tier_run,
        min_speedup,
        max_median_err,
        min_within_bars,
        harness,
    })
}

fn load_spec(name_or_path: &str) -> Result<SpaceSpec, String> {
    if let Some(spec) = SpaceSpec::bundled(name_or_path) {
        return Ok(spec);
    }
    let text = std::fs::read_to_string(name_or_path)
        .map_err(|e| format!("'{name_or_path}' is not a bundled spec and not readable: {e}"))?;
    SpaceSpec::parse_str(&text)
}

fn smoke_gate(row: &Json, points: &[outerspace::dse::DsePoint]) -> Result<(), String> {
    let u = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
    let n = u("points");
    if n < 64 {
        return Err(format!("smoke sweep has {n} points, needs >= 64"));
    }
    let default_canon = OuterSpaceConfig::default().to_json().to_string_compact();
    if !points.iter().any(|p| p.config_canonical() == default_canon) {
        return Err("smoke space does not include the paper-default config".into());
    }
    let frontier = u("frontier");
    if frontier == 0 {
        return Err("smoke sweep produced an empty Pareto frontier".into());
    }
    if row.get("failed").and_then(Json::as_u64).unwrap_or(1) != 0 {
        return Err("smoke sweep had failed points".into());
    }
    // Accounting identity: every point is an explicit outcome — evaluated,
    // aborted, invalid, or failed. Nothing is ever silently skipped.
    let accounted = u("simulated") + u("cache_hits") + u("aborted") + u("invalid") + u("failed");
    if accounted != n {
        return Err(format!("accounting identity violated: {accounted} outcomes != {n} points"));
    }
    Ok(())
}

/// Checks the tier gates against the written tier report.
fn tier_gates(a: &DseArgs, tiers_path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(tiers_path)
        .map_err(|e| format!("read {}: {e}", tiers_path.display()))?;
    let report = outerspace_json::parse(&text).map_err(|e| format!("parse tier report: {e}"))?;
    let f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let v = report.get("validation").ok_or("tier report missing validation block")?;
    let vf = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    if let Some(min) = a.min_speedup {
        let got = f("speedup_vs_full");
        if got < min {
            return Err(format!("speedup {got:.2}x below the required {min:.2}x"));
        }
    }
    if let Some(max) = a.max_median_err {
        let got = vf("median_abs_err");
        if got > max {
            return Err(format!(
                "median |cycle error| {:.2}% above the allowed {:.2}%",
                100.0 * got,
                100.0 * max
            ));
        }
    }
    if let Some(min) = a.min_within_bars {
        let got = vf("within_bars_frac");
        if got < min {
            return Err(format!(
                "only {:.0}% of holdout points within their error bars (need {:.0}%)",
                100.0 * got,
                100.0 * min
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut a = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if a.smoke {
        // The CI gate pins the spec and runs it unscaled so the point count
        // and the default-config membership are invariant.
        a.space = "smoke".to_string();
        a.harness.full = true;
    }
    let spec = match load_spec(&a.space) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let pareto_path = a
        .pareto_out
        .clone()
        .unwrap_or_else(|| a.harness.out_dir.join(format!("dse_{}_pareto.json", spec.name)));
    let cache_dir = a.cache.clone().unwrap_or_else(|| dse::cache_dir(&a.harness));
    let tiers_path = a
        .tier_run
        .tiers_path
        .clone()
        .unwrap_or_else(|| a.harness.out_dir.join(format!("dse_{}_tiers.json", spec.name)));
    a.tier_run.tiers_path = Some(tiers_path.clone());

    println!(
        "# dse: space '{}' ({} axes, {} workloads), {} workers, tier {}{}",
        spec.name,
        spec.axes.len(),
        spec.workloads.len(),
        a.threads,
        a.tier_run.sweep.tier.tag(),
        if a.tier_run.sweep.abort { " + early-abort" } else { "" },
    );

    let mut runner = Runner::new("dse", &a.harness);
    let case_spec = spec.clone();
    let case_opts = a.harness.clone();
    let (samples, threads) = (a.samples, a.threads);
    let (case_cache, case_pareto) = (cache_dir.clone(), pareto_path.clone());
    let case_tier = a.tier_run.clone();
    let row = runner.run_case(&spec.name, move || {
        dse::sweep_spec(
            &case_spec,
            &case_opts,
            samples,
            threads,
            &case_cache,
            &case_pareto,
            &case_tier,
        )
    });
    let summary = runner.finalize();

    let Some(row) = row else {
        eprintln!("error: sweep did not complete (see {})", summary.out_path);
        return ExitCode::from(1);
    };
    if a.smoke {
        // Re-expand for the membership check (cheap; simulation is cached).
        let scaled = if a.harness.full { spec.clone() } else { spec.scaled(a.harness.scale) };
        match scaled
            .expand(a.samples, a.harness.seed)
            .map_err(|e| e.to_string())
            .and_then(|points| smoke_gate(&row, &points))
        {
            Ok(()) => println!("# smoke gate: ok"),
            Err(e) => {
                eprintln!("error: smoke gate failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if a.tier_run.validate_every > 0 {
        match tier_gates(&a, &tiers_path) {
            Ok(()) => println!("# tier gates: ok"),
            Err(e) => {
                eprintln!("error: tier gate failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    // Standing of the default design, for the terminal reader.
    if let Some(status) = row.get("default_config").and_then(Json::as_str) {
        println!("# paper-default config: {status}");
    }
    ExitCode::SUCCESS
}
