//! Thin CLI wrapper; the load/chaos scenarios live in
//! [`outerspace_bench::harnesses::serve`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing. For
//! ad-hoc traffic shaping (rates, pareto-tuned routing, custom chaos knobs)
//! use the `ospace-serve` binary from `outerspace-serve` instead.

use outerspace_bench::harnesses::serve;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(serve::DEFAULTS);
    serve::run(&opts);
}
