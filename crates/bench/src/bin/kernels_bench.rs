//! Thin CLI wrapper for the software-kernel microbenchmarks; the harness
//! body lives in [`outerspace_bench::harnesses::kernels`] so `runall` can
//! drive the same code in-process.
//!
//! Beyond the shared harness flags this binary accepts `--check`: instead
//! of running the full cell grid, freshly measure only the pinned cells and
//! compare against the latest entry of `<out>/BENCH_kernels.json`, exiting
//! non-zero on a >5% median regression (the `ci.sh` perf gate). `--check`
//! honours `BENCH_PIN=1` (append a fresh baseline instead of judging, the
//! re-pin path) and `BENCH_INJECT_SLOWDOWN=<cell>:<factor>` (synthetic
//! regression, used by CI to prove the gate can fail).

use outerspace_bench::harnesses::kernels;
use outerspace_bench::HarnessOpts;

fn main() {
    // `--check` is specific to this binary; strip it before the shared
    // parser (which rejects unknown flags with a usage error).
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let opts = match HarnessOpts::parse(args, kernels::DEFAULTS) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{} [--check]", outerspace_bench::USAGE);
            std::process::exit(2);
        }
    };
    if check {
        std::process::exit(kernels::check(&opts));
    }
    kernels::run(&opts);
}
