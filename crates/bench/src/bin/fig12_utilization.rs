//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::fig12`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::fig12;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(fig12::DEFAULTS);
    fig12::run(&opts);
}
