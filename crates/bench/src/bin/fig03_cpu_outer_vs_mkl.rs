//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::fig03`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::fig03;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(fig03::DEFAULTS);
    fig03::run(&opts);
}
