//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::fig04`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::fig04;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(fig04::DEFAULTS);
    fig04::run(&opts);
}
