//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::fig_sparch`] so `runall` can drive the
//! same code in-process with crash isolation and `--resume` checkpointing.
//!
//! Accepts one extra flag beyond the shared harness options: `--smoke`
//! multiplies the workload divisor by the harness's smoke scale — the
//! tiny-scale determinism gate `ci.sh` reruns and diffs.

use outerspace_bench::harnesses::fig_sparch;
use outerspace_bench::{HarnessOpts, USAGE};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let mut opts = match HarnessOpts::parse(args, fig_sparch::DEFAULTS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE} [--smoke]");
            std::process::exit(2);
        }
    };
    if smoke {
        opts.scale = opts.scale.saturating_mul(fig_sparch::SMOKE_SCALE);
    }
    fig_sparch::run(&opts);
}
