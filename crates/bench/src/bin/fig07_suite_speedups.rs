//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::fig07`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::fig07;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(fig07::DEFAULTS);
    fig07::run(&opts);
}
