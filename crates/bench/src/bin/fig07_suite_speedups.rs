//! Fig. 7 + Table 4 + §7.1.2: speedups over MKL, cuSPARSE and CUSP on the
//! real-world matrix suite (synthetic stand-ins; see DESIGN.md §3), with
//! the throughput and bandwidth-utilization summary the section reports.
//!
//! Paper results: mean speedups 7.9× (MKL), 13.0× (cuSPARSE), 14.0× (CUSP);
//! average throughput 2.9 GFLOPS; multiply-phase bandwidth utilization
//! 59.5–68.9 %, merge-phase 46.5–64.8 %. Regular matrices (filter3D,
//! roadNet-CA) and m133-b3 show the smallest speedups.
//!
//! Pass `--table4` to print the suite inventory instead of running.

use outerspace::gen::suite::TABLE4;
use outerspace_bench::{fmt_secs, geomean, run_baselines, run_outerspace, HarnessOpts};

struct Row {
    name: &'static str,
    scale: u32,
    dim: u32,
    nnz: usize,
    gflops: f64,
    mult_bw_pct: f64,
    merge_bw_pct: f64,
    outerspace_s: f64,
    speedup_mkl: f64,
    speedup_cusparse: f64,
    speedup_cusp: f64,
}

outerspace_json::impl_to_json!(Row { name, scale, dim, nnz, gflops, mult_bw_pct, merge_bw_pct, outerspace_s, speedup_mkl, speedup_cusparse, speedup_cusp });


/// Picks a workload scale for a suite entry: dimension capped near 100 k rows
/// and intermediate products capped so a full 20-matrix sweep finishes in
/// minutes. `--full` disables both caps; `--scale` multiplies the result.
fn pick_scale(e: &outerspace::gen::suite::SuiteEntry, opts: &outerspace_bench::HarnessOpts) -> u32 {
    if std::env::args().any(|a| a == "--full") {
        return 1;
    }
    const PRODUCT_CAP: u64 = 50_000_000;
    let mut scale = (e.dim / 100_000).max(1) * opts.scale;
    for _ in 0..6 {
        let probe = e.generate_scaled(scale.min(e.dim / 2).max(1), opts.seed);
        let products =
            outerspace::sparse::ops::spgemm_flops(&probe, &probe).expect("square") / 2;
        if products <= PRODUCT_CAP {
            break;
        }
        let grow = (products as f64 / PRODUCT_CAP as f64).ceil() as u32;
        scale = (scale * grow.clamp(2, 16)).min(e.dim / 2).max(1);
    }
    scale.min(e.dim / 2).max(1)
}

fn main() {
    if std::env::args().any(|a| a == "--table4") {
        println!("{:<16} {:>9} {:>10} {:>7}  kind", "matrix", "dim", "nnz", "nnz/row");
        for e in TABLE4 {
            println!(
                "{:<16} {:>9} {:>10} {:>7.1}  {}",
                e.name,
                e.dim,
                e.nnz,
                e.nnz_per_row(),
                e.kind
            );
        }
        return;
    }

    let opts = HarnessOpts::from_args(1);
    println!("# Fig. 7 reproduction: speedups on the Table 4 suite (synthetic stand-ins)");
    println!(
        "{:<16} {:>5} {:>8} {:>9} | {:>7} {:>6} {:>6} | {:>10} | {:>6} {:>6} {:>6}",
        "matrix", "scale", "dim", "nnz", "GFLOPS", "mult%", "mrg%", "OuterSPACE", "xMKL",
        "xCUSPARSE", "xCUSP"
    );

    let mut rows = Vec::new();
    for e in TABLE4 {
        let scale = pick_scale(e, &opts);
        let a = e.generate_scaled(scale, opts.seed);
        let rep = run_outerspace(&a);
        let base = run_baselines(&a);
        let ours = rep.seconds();
        let row = Row {
            name: e.name,
            scale,
            dim: a.nrows(),
            nnz: a.nnz(),
            gflops: rep.gflops(),
            mult_bw_pct: rep.multiply.bandwidth_utilization(&rep.config) * 100.0,
            merge_bw_pct: rep.merge.bandwidth_utilization(&rep.config) * 100.0,
            outerspace_s: ours,
            speedup_mkl: base.mkl_model_s / ours,
            speedup_cusparse: base.cusparse_model_s / ours,
            speedup_cusp: base.cusp_model_s / ours,
        };
        println!(
            "{:<16} {:>5} {:>8} {:>9} | {:>7.2} {:>6.1} {:>6.1} | {:>10} | {:>6.1} {:>6.1} {:>6.1}",
            row.name,
            row.scale,
            row.dim,
            row.nnz,
            row.gflops,
            row.mult_bw_pct,
            row.merge_bw_pct,
            fmt_secs(row.outerspace_s),
            row.speedup_mkl,
            row.speedup_cusparse,
            row.speedup_cusp,
        );
        rows.push(row);
    }

    let mkl: Vec<f64> = rows.iter().map(|r| r.speedup_mkl).collect();
    let cus: Vec<f64> = rows.iter().map(|r| r.speedup_cusparse).collect();
    let cusp: Vec<f64> = rows.iter().map(|r| r.speedup_cusp).collect();
    let gflops: Vec<f64> = rows.iter().map(|r| r.gflops).collect();
    let mult_bw: Vec<f64> = rows.iter().map(|r| r.mult_bw_pct).collect();
    let merge_bw: Vec<f64> = rows.iter().map(|r| r.merge_bw_pct).collect();
    let min_max =
        |v: &[f64]| (v.iter().cloned().fold(f64::MAX, f64::min), v.iter().cloned().fold(0.0, f64::max));
    println!("#");
    println!(
        "# geomean speedups: MKL {:.1}x (paper 7.9x), cuSPARSE {:.1}x (paper 13.0x), CUSP {:.1}x (paper 14.0x)",
        geomean(&mkl),
        geomean(&cus),
        geomean(&cusp)
    );
    println!(
        "# mean throughput: {:.2} GFLOPS (paper 2.9); mult BW {:.1}-{:.1}% (paper 59.5-68.9), merge BW {:.1}-{:.1}% (paper 46.5-64.8)",
        gflops.iter().sum::<f64>() / gflops.len() as f64,
        min_max(&mult_bw).0,
        min_max(&mult_bw).1,
        min_max(&merge_bw).0,
        min_max(&merge_bw).1,
    );
    opts.dump_json("fig07", &rows);
}
