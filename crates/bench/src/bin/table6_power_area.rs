//! Table 6 + §7.4: power and area estimates, GFLOPS/W, and the perf/W
//! comparison against the K40.
//!
//! Paper values: 86.74 mm² total area, 23.99 W total power (14.60 W of it
//! HBM), 0.12 GFLOPS/W average, and ≈150× better GFLOPS/W than the K40
//! (which measured 85 W while averaging 0.067 GFLOPS → 0.8 MFLOPS/W).

use outerspace::energy::AreaPowerModel;
use outerspace::prelude::*;
use outerspace::sim::xmodels::{gpu::row_imbalance, GpuModel};

use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(1);
    let model = AreaPowerModel::tsmc32nm();
    let cfg = OuterSpaceConfig::default();

    // --- Static Table 6 (paper's assumed suite-average activity). ---
    let t6 = model.table6(&cfg, None);
    println!("# Table 6 reproduction (32 nm)");
    println!("{:<28} {:>10} {:>10}   paper", "component", "area mm^2", "power W");
    let paper = [(49.14, 7.98), (34.40, 0.82), (3.13, 0.06), (0.07, 0.53), (f64::NAN, 14.60)];
    for (c, p) in t6.components.iter().zip(paper) {
        println!(
            "{:<28} {:>10} {:>10.2}   ({}, {:.2})",
            c.name,
            c.area_mm2.map(|a| format!("{a:.2}")).unwrap_or_else(|| "N/A".into()),
            c.power_w,
            if p.0.is_nan() { "N/A".into() } else { format!("{:.2}", p.0) },
            p.1
        );
    }
    println!(
        "{:<28} {:>10.2} {:>10.2}   (86.74, 23.99)",
        "Total",
        t6.total_area_mm2(),
        t6.total_power_w()
    );

    // --- Measured-activity power + GFLOPS/W on a suite sample. ---
    let sim = Simulator::new(cfg.clone()).expect("valid config");
    let mut gpw = Vec::new();
    let mut gpu_mflops_w = Vec::new();
    println!("\n# measured-activity energy on suite samples (scale {}x)", opts.scale);
    for name in ["email-Enron", "poisson3Da", "wiki-Vote", "facebook", "p2p-Gnutella31", "webbase-1M"] {
        let e = outerspace::gen::suite::by_name(name).expect("known matrix");
        let scale = ((e.dim / 20_000).max(1)) * opts.scale;
        let a = e.generate_scaled(scale, opts.seed);
        let (_, rep) = sim.spgemm(&a, &a).expect("square");
        let t6_run = model.table6(&cfg, Some(&rep));
        let ours = model.gflops_per_watt(&cfg, &rep);
        gpw.push(ours);

        let (_, hash) = outerspace::baselines::hash::spgemm(&a, &a).expect("square");
        let t_gpu = GpuModel::tesla_k40()
            .cusparse_time(&hash, a.nrows() as u64, row_imbalance(&a, &a))
            .total();
        let gpu = hash.traffic.flops() as f64 / t_gpu / 1e9 / 85.0 * 1e3; // mW basis
        gpu_mflops_w.push(gpu);
        println!(
            "  {name:<14} {:>6.2} GFLOPS  {:>6.2} W  -> {:>6.3} GFLOPS/W (K40 model: {:.2} MFLOPS/W)",
            rep.gflops(),
            t6_run.total_power_w(),
            ours,
            gpu
        );
    }
    // Geometric means: the arithmetic mean is dominated by the regular
    // matrices where cuSPARSE does comparatively well.
    let ours_avg = gpw.iter().sum::<f64>() / gpw.len() as f64;
    let gpu_avg = (gpu_mflops_w.iter().map(|x| x.ln()).sum::<f64>()
        / gpu_mflops_w.len() as f64)
        .exp();
    println!(
        "\n# avg: {ours_avg:.3} GFLOPS/W (paper 0.12); perf/W advantage over K40 model: {:.0}x (paper ~150x)",
        ours_avg * 1e3 / gpu_avg
    );
    opts.dump_json("table6", &t6);
}
