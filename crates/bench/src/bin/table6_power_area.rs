//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::table6`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::table6;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(table6::DEFAULTS);
    table6::run(&opts);
}
