//! §7.3: dynamic memory-allocation requests vs the static multiplier α.
//!
//! "Our analysis of the total number of dynamic requests to increment the
//! spill-over pointer, while sweeping (α), shows that the count of these
//! requests drops to less than 10,000 for α >= 2 for almost all the
//! matrices in Table 4. m133-b3 is an outlier, with zero dynamic requests."

use outerspace::gen::suite::TABLE4;
use outerspace_bench::HarnessOpts;

struct Row {
    name: &'static str,
    scale: u32,
    requests_by_alpha: Vec<(f64, u64)>,
    wasted_at_alpha2: u64,
}

outerspace_json::impl_to_json!(Row { name, scale, requests_by_alpha, wasted_at_alpha2 });


/// Picks a workload scale for a suite entry: dimension capped near 100 k rows
/// and intermediate products capped so a full 20-matrix sweep finishes in
/// minutes. `--full` disables both caps; `--scale` multiplies the result.
fn pick_scale(e: &outerspace::gen::suite::SuiteEntry, opts: &outerspace_bench::HarnessOpts) -> u32 {
    if std::env::args().any(|a| a == "--full") {
        return 1;
    }
    const PRODUCT_CAP: u64 = 50_000_000;
    let mut scale = (e.dim / 100_000).max(1) * opts.scale;
    for _ in 0..6 {
        let probe = e.generate_scaled(scale.min(e.dim / 2).max(1), opts.seed);
        let products =
            outerspace::sparse::ops::spgemm_flops(&probe, &probe).expect("square") / 2;
        if products <= PRODUCT_CAP {
            break;
        }
        let grow = (products as f64 / PRODUCT_CAP as f64).ceil() as u32;
        scale = (scale * grow.clamp(2, 16)).min(e.dim / 2).max(1);
    }
    scale.min(e.dim / 2).max(1)
}

fn main() {
    let opts = HarnessOpts::from_args(1);
    let alphas = [1.0, 1.5, 2.0, 3.0, 4.0];
    println!("# Section 7.3 reproduction: spill-over requests vs alpha (C = A x A)");
    println!(
        "{:<16} {:>5} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>12}",
        "matrix", "scale", "a=1", "a=1.5", "a=2", "a=3", "a=4", "wasted@a=2"
    );

    let mut rows = Vec::new();
    for e in TABLE4 {
        let scale = pick_scale(e, &opts);
        let a = e.generate_scaled(scale, opts.seed);
        let reports = outerspace::sim::alloc::analyze(&a.to_csc(), &a, &alphas);
        let row = Row {
            name: e.name,
            scale,
            requests_by_alpha: reports.iter().map(|r| (r.alpha, r.dynamic_requests)).collect(),
            wasted_at_alpha2: reports[2].wasted_elements,
        };
        println!(
            "{:<16} {:>5} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>12}",
            row.name,
            row.scale,
            row.requests_by_alpha[0].1,
            row.requests_by_alpha[1].1,
            row.requests_by_alpha[2].1,
            row.requests_by_alpha[3].1,
            row.requests_by_alpha[4].1,
            row.wasted_at_alpha2,
        );
        rows.push(row);
    }

    let m133 = rows.iter().find(|r| r.name == "m133-b3").expect("in suite");
    println!(
        "# shape: m133-b3 issues {} requests at alpha=1 (paper: 0, its rows are exactly 4-wide)",
        m133.requests_by_alpha[0].1
    );
    let settled = rows
        .iter()
        .filter(|r| {
            let a2 = r.requests_by_alpha[2].1;
            let a1 = r.requests_by_alpha[0].1;
            a1 == 0 || (a2 as f64) < 0.2 * a1 as f64 || a2 < 10_000
        })
        .count();
    println!(
        "# shape: {settled}/{} matrices settle below the paper's 10k-request threshold by alpha=2",
        rows.len()
    );
    opts.dump_json("sec73", &rows);
}
