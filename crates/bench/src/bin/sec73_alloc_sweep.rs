//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::sec73`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::sec73;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(sec73::DEFAULTS);
    sec73::run(&opts);
}
