//! Table 5: sparse matrix-vector multiplication speedups.
//!
//! "Speedups of OuterSPACE over CPU (MKL) and GPU (cuSPARSE) for sparse
//! matrix-vector multiplication. The density of the vector (r) is varied
//! from 0.01 to 1.0. The sparse matrices contain uniformly random
//! distribution of one million non-zeros."
//!
//! Paper values: vs CPU 93.2→196.3× at r=0.01 falling to 0.8→1.7× at r=1.0;
//! vs GPU 92.5→154.4× falling to 2.2→3.8×. The headline shape: a 10×
//! reduction in vector density buys ≈10× speedup, and even dense vectors
//! stay within ~80 % of MKL.

use outerspace::prelude::*;
use outerspace::sim::xmodels::{CpuModel, GpuModel};
use outerspace_bench::HarnessOpts;

struct Row {
    dim: u32,
    speedup_cpu: [f64; 3],
    speedup_gpu: [f64; 3],
}

outerspace_json::impl_to_json!(Row { dim, speedup_cpu, speedup_gpu });

fn main() {
    let opts = HarnessOpts::from_args(4);
    let nnz = 1_000_000 / opts.scale as usize;
    let dims: Vec<u32> =
        [65_536u32, 131_072, 262_144, 524_287].iter().map(|d| d / opts.scale).collect();
    let densities = [0.01f64, 0.1, 1.0];

    let sim = Simulator::new(OuterSpaceConfig::default()).expect("default config");
    let cpu = CpuModel::xeon_e5_1650_v4();
    let k40 = GpuModel::tesla_k40();

    println!("# Table 5 reproduction: SpMV speedups, nnz = {nnz} (scale {}x)", opts.scale);
    println!(
        "{:>9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "dim", "cpu r=.01", "r=.1", "r=1", "gpu r=.01", "r=.1", "r=1"
    );

    let mut rows = Vec::new();
    for n in dims {
        let a = outerspace::gen::uniform::matrix(n, n, nnz, opts.seed);
        let a_cc = a.to_csc();
        let matrix_bytes = 12 * a.nnz() as u64;
        let mut cpu_s = [0.0f64; 3];
        let mut gpu_s = [0.0f64; 3];
        for (i, &r) in densities.iter().enumerate() {
            let x = outerspace::gen::vector::sparse(n, r, opts.seed + i as u64);
            let (_, rep) = sim.spmv(&a_cc, &x).expect("shapes ok");
            let ours = rep.seconds();
            // MKL treats the vector as dense: time independent of r (§7.2).
            let t_cpu = cpu.spmv_seconds(matrix_bytes, n as u64);
            // cuSPARSE scales compute with r but always streams the matrix.
            let (_, gstats) =
                outerspace::baselines::spmv::spmv_index_match(&a, &x).expect("shapes ok");
            let t_gpu = k40.spmv_time(matrix_bytes, gstats.multiplies, n as u64);
            cpu_s[i] = t_cpu / ours;
            gpu_s[i] = t_gpu / ours;
        }
        println!(
            "{:>9} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1}",
            n, cpu_s[0], cpu_s[1], cpu_s[2], gpu_s[0], gpu_s[1], gpu_s[2]
        );
        rows.push(Row { dim: n, speedup_cpu: cpu_s, speedup_gpu: gpu_s });
    }

    let scaling = rows.iter().map(|r| r.speedup_cpu[0] / r.speedup_cpu[1]).sum::<f64>()
        / rows.len() as f64;
    println!(
        "# shape: 10x density reduction buys ~{scaling:.1}x speedup (paper: ~10x); \
         paper r=.01 row: 93-196x CPU, 92-154x GPU"
    );
    opts.dump_json("table5", &rows);
}
