//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::sec8`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::sec8;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(sec8::DEFAULTS);
    sec8::run(&opts);
}
