//! §8: OuterSPACE scaling — the silicon-interposed 4× system and multi-node
//! torus configurations.
//!
//! "In order to handle matrix sizes larger than a few million, a
//! silicon-interposed system with 4 HBMs and 4× the PEs on-chip could be
//! realized ... we conceive equipping our architecture with node-to-node
//! SerDes channels to allow multiple OuterSPACE nodes connected in a torus."
//!
//! This study runs the same workload on the Table 2 baseline, the
//! interposed 4× chip, and 4-/16-node tori, reporting how throughput scales
//! with resources (strong scaling) and how a proportionally grown workload
//! fares (weak scaling).

use outerspace::prelude::*;
use outerspace_bench::{fmt_secs, HarnessOpts};

struct Row {
    system: String,
    pes: u32,
    bandwidth_gbps: u64,
    workload_nnz: usize,
    seconds: f64,
    gflops: f64,
    speedup_vs_base: f64,
}

outerspace_json::impl_to_json!(Row { system, pes, bandwidth_gbps, workload_nnz, seconds, gflops, speedup_vs_base });

fn main() {
    let opts = HarnessOpts::from_args(1);
    let base_cfg = OuterSpaceConfig::default();
    let systems: Vec<(String, OuterSpaceConfig)> = vec![
        ("baseline (Table 2)".into(), base_cfg.clone()),
        ("interposed 4x".into(), base_cfg.interposed_4x()),
        ("torus x4".into(), base_cfg.torus(4)),
        ("torus x16".into(), base_cfg.torus(16)),
    ];

    println!("# Section 8 scaling study");
    println!(
        "{:<20} {:>6} {:>8} {:>10} | {:>10} {:>8} {:>8}",
        "system", "PEs", "GB/s", "nnz", "time", "GFLOPS", "speedup"
    );

    let mut rows = Vec::new();

    // --- Strong scaling: fixed workload, growing machine. ---
    let a = outerspace::gen::rmat::graph500(
        32_768 / opts.scale,
        400_000 / opts.scale as usize,
        opts.seed,
    );
    let mut base_secs = 0.0;
    for (name, cfg) in &systems {
        let sim = Simulator::new(cfg.clone()).expect("valid scaled config");
        let (_, rep) = sim.spgemm(&a, &a).expect("square");
        if base_secs == 0.0 {
            base_secs = rep.seconds();
        }
        let row = Row {
            system: format!("{name} [strong]"),
            pes: cfg.total_pes(),
            bandwidth_gbps: cfg.hbm_total_bandwidth_bytes_per_sec() / 1_000_000_000,
            workload_nnz: a.nnz(),
            seconds: rep.seconds(),
            gflops: rep.gflops(),
            speedup_vs_base: base_secs / rep.seconds(),
        };
        println!(
            "{:<20} {:>6} {:>8} {:>10} | {:>10} {:>8.2} {:>8.2}",
            row.system,
            row.pes,
            row.bandwidth_gbps,
            row.workload_nnz,
            fmt_secs(row.seconds),
            row.gflops,
            row.speedup_vs_base
        );
        rows.push(row);
    }

    // --- Weak scaling: workload grows with the machine. ---
    println!();
    let mut base_gflops = 0.0;
    for (i, (name, cfg)) in systems.iter().enumerate() {
        let grow = [1u32, 2, 4, 8][i];
        let a = outerspace::gen::rmat::graph500(
            (12_288 / opts.scale) * grow,
            (100_000 / opts.scale as usize) * grow as usize,
            opts.seed,
        );
        let sim = Simulator::new(cfg.clone()).expect("valid scaled config");
        let (_, rep) = sim.spgemm(&a, &a).expect("square");
        if base_gflops == 0.0 {
            base_gflops = rep.gflops();
        }
        let row = Row {
            system: format!("{name} [weak]"),
            pes: cfg.total_pes(),
            bandwidth_gbps: cfg.hbm_total_bandwidth_bytes_per_sec() / 1_000_000_000,
            workload_nnz: a.nnz(),
            seconds: rep.seconds(),
            gflops: rep.gflops(),
            speedup_vs_base: rep.gflops() / base_gflops,
        };
        println!(
            "{:<20} {:>6} {:>8} {:>10} | {:>10} {:>8.2} {:>8.2}",
            row.system,
            row.pes,
            row.bandwidth_gbps,
            row.workload_nnz,
            fmt_secs(row.seconds),
            row.gflops,
            row.speedup_vs_base
        );
        rows.push(row);
    }
    println!("# shape: throughput scales with node count under weak scaling; strong scaling");
    println!("# saturates once the fixed workload no longer fills the PE array (Amdahl).");
    opts.dump_json("sec8_scaling", &rows);
}
