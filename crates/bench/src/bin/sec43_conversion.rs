//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::sec43`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::sec43;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(sec43::DEFAULTS);
    sec43::run(&opts);
}
