//! §4.3: format-conversion amortization over chained multiplications.
//!
//! "When matrices A and B are not available in the CC and CR formats ...
//! This is a one-time requirement for chained multiplication operations of
//! the type A×B×C..., since OuterSPACE can output the result in either CR
//! or CC formats. ... The requirement of conversion is obviated for
//! symmetric matrices."
//!
//! This study measures the conversion phase's share of total simulated time
//! as the chain grows (conversion paid once, at the head), and confirms the
//! symmetric-input exemption.

use outerspace::prelude::*;
use outerspace_bench::{fmt_secs, HarnessOpts};

struct Row {
    chain_length: u32,
    total_s: f64,
    conversion_s: f64,
    conversion_pct: f64,
}

outerspace_json::impl_to_json!(Row { chain_length, total_s, conversion_s, conversion_pct });

/// Keeps the `k` largest-magnitude entries of each row.
fn sparsify_top_k(m: &Csr, k: usize) -> Csr {
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..m.nrows() {
        let (rc, rv) = m.row(i);
        let mut entries: Vec<(u32, f64)> =
            rc.iter().copied().zip(rv.iter().copied()).collect();
        entries.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
        entries.truncate(k);
        entries.sort_by_key(|&(c, _)| c);
        for (c, v) in entries {
            cols.push(c);
            vals.push(v);
        }
        row_ptr.push(cols.len());
    }
    Csr::new(m.nrows(), m.ncols(), row_ptr, cols, vals).expect("valid by construction")
}

fn main() {
    let opts = HarnessOpts::from_args(1);
    let n = 4096 / opts.scale;
    let sim = Simulator::new(OuterSpaceConfig::default()).expect("valid config");

    // Chain head: an asymmetric matrix that must be converted once. Each
    // subsequent factor multiplies on the right; the running product is
    // consumed in CC form (spgemm_cc_operand), so no further conversions.
    let factors: Vec<Csr> = (0..8)
        .map(|i| outerspace::gen::uniform::matrix(n, n, 8 * n as usize, opts.seed + i))
        .collect();

    println!("# Section 4.3 reproduction: conversion amortization over chains");
    println!("# n = {n}, ~{} nnz per factor", 8 * n);
    println!("{:>6} {:>12} {:>12} {:>8}", "chain", "total", "conversion", "conv %");

    let mut rows = Vec::new();
    for len in 1..=8u32 {
        let mut conversion_cycles = 0u64;
        let mut total_cycles = 0u64;
        // First product charges the conversion of the head factor.
        let (mut acc, rep) = sim.spgemm(&factors[0], &factors[1.min(len as usize - 1)])
            .expect("square");
        conversion_cycles += rep.convert.map(|c| c.cycles).unwrap_or(0);
        total_cycles += rep.total_cycles();
        // Remaining factors consume the CC-format running product directly.
        for f in factors.iter().take(len as usize).skip(2) {
            // Sparsify the running product (keep the strongest entries per
            // row) so the chain stays sparse, as iterative applications like
            // Markov clustering do between multiplications.
            acc = sparsify_top_k(&acc, 8);
            let (next, rep) = sim.spgemm_cc_operand(&acc.to_csc(), f).expect("square");
            assert!(rep.convert.is_none());
            total_cycles += rep.total_cycles();
            acc = next;
        }
        let cfg = OuterSpaceConfig::default();
        let row = Row {
            chain_length: len,
            total_s: cfg.cycles_to_seconds(total_cycles),
            conversion_s: cfg.cycles_to_seconds(conversion_cycles),
            conversion_pct: 100.0 * conversion_cycles as f64 / total_cycles.max(1) as f64,
        };
        println!(
            "{:>6} {:>12} {:>12} {:>7.1}%",
            row.chain_length,
            fmt_secs(row.total_s),
            fmt_secs(row.conversion_s),
            row.conversion_pct
        );
        rows.push(row);
    }

    assert!(
        rows.last().expect("non-empty").conversion_pct
            < rows.first().expect("non-empty").conversion_pct,
        "conversion share must shrink with chain length"
    );

    // Symmetric exemption.
    let sym = outerspace::gen::rmat::graph500(n, 6 * n as usize, opts.seed);
    let (_, rep) = sim.spgemm(&sym, &sym).expect("square");
    println!(
        "# symmetric input: conversion phase {} (paper: obviated entirely)",
        if rep.convert.is_none() { "skipped" } else { "charged!" }
    );
    opts.dump_json("sec43", &rows);
}
