//! Thin CLI wrapper; the study body lives in
//! [`outerspace_bench::harnesses::table1`] so `runall` can drive the same
//! code in-process with crash isolation and `--resume` checkpointing.

use outerspace_bench::harnesses::table1;
use outerspace_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args(table1::DEFAULTS);
    table1::run(&opts);
}
