//! End-to-end tests of the crash-safe, resumable runner layer: panic
//! isolation, the wall-clock watchdog, and the kill-then-`--resume`
//! round-trip ISSUE acceptance requires (the resumed run must produce the
//! same final JSON as an uninterrupted one, without re-executing
//! checkpointed cases).

use std::path::{Path, PathBuf};

use outerspace_bench::runner::{CaseResult, CaseStatus, Runner};
use outerspace_bench::{HarnessDefaults, HarnessOpts};
use outerspace_json::{parse, Json};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("outerspace-runner-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(out: &Path) -> HarnessOpts {
    HarnessOpts::parse(
        ["--out".to_string(), out.display().to_string()],
        HarnessDefaults { scale: 1, max_case_secs: 0.0 },
    )
    .unwrap()
}

#[test]
fn panicking_case_is_isolated_and_recorded() {
    let dir = scratch("panic");
    let mut runner = Runner::new("t", &opts(&dir));
    runner.run_case("before", || -> CaseResult<u64> { Ok(1) });
    runner.run_case("boom", || -> CaseResult<u64> { panic!("injected failure") });
    // The panic must not poison the runner: later cases still execute.
    runner.run_case("after", || -> CaseResult<u64> { Ok(2) });

    let by_name = |recs: &[outerspace_bench::runner::CaseRecord], n: &str| {
        recs.iter().find(|r| r.case == n).unwrap().clone()
    };
    let recs = runner.records().to_vec();
    assert_eq!(by_name(&recs, "before").status, CaseStatus::Ok);
    let boom = by_name(&recs, "boom");
    assert_eq!(boom.status, CaseStatus::Panicked);
    assert!(boom.error.as_deref().unwrap().contains("injected failure"));
    assert_eq!(by_name(&recs, "after").status, CaseStatus::Ok);

    let summary = runner.finalize();
    assert_eq!((summary.ok, summary.panicked), (2, 1));
    // The final dump records the failure as a structured row.
    let doc = parse(&std::fs::read_to_string(dir.join("t.json")).unwrap()).unwrap();
    let cases = doc.get("cases").unwrap().as_array().unwrap();
    assert_eq!(cases.len(), 3);
    assert_eq!(cases[1].get("status").unwrap().as_str(), Some("panicked"));
    assert_eq!(doc.get("manifest").unwrap().get("panicked").unwrap().as_u64(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn skip_reason_becomes_skipped_status() {
    let dir = scratch("skip");
    let mut runner = Runner::new("t", &opts(&dir));
    runner.run_case("nope", || -> CaseResult<u64> { Err("precondition failed".into()) });
    let rec = runner.records()[0].clone();
    assert_eq!(rec.status, CaseStatus::Skipped);
    assert_eq!(rec.error.as_deref(), Some("precondition failed"));
    assert_eq!(runner.finalize().skipped, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_trips_on_slow_case() {
    let dir = scratch("watchdog");
    let mut o = opts(&dir);
    o.max_case_secs = 0.25;
    let mut runner = Runner::new("t", &o);
    runner.run_case("slow", || -> CaseResult<u64> {
        std::thread::sleep(std::time::Duration::from_secs(30));
        Ok(0)
    });
    // The sweep moves on immediately; the abandoned worker keeps sleeping.
    runner.run_case("fast", || -> CaseResult<u64> { Ok(7) });
    let recs = runner.records().to_vec();
    assert_eq!(recs[0].status, CaseStatus::Timeout);
    assert!(recs[0].error.as_deref().unwrap().contains("max-case-secs"));
    assert!(recs[0].wall_s < 5.0, "watchdog did not fire early: {}", recs[0].wall_s);
    assert_eq!(recs[1].status, CaseStatus::Ok);
    assert_eq!(runner.finalize().timeout, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Strips fields that legitimately differ between an interrupted-then-resumed
/// run and an uninterrupted one (wall-clock timings and the cache marker).
fn normalized(doc: &Json) -> Json {
    fn strip(j: &Json) -> Json {
        match j {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| k != "wall_s" && k != "cached" && k != "git_rev")
                    .map(|(k, v)| (k.clone(), strip(v)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(strip).collect()),
            other => other.clone(),
        }
    }
    strip(doc)
}

type CaseFn = fn() -> CaseResult<u64>;

fn run_cases(runner: &mut Runner, upto: usize) {
    let cases: [(&str, CaseFn); 3] = [("a", || Ok(10)), ("b", || Ok(20)), ("c", || Ok(30))];
    for (name, f) in cases.iter().take(upto) {
        runner.run_case(name, *f);
    }
}

#[test]
fn kill_then_resume_reuses_checkpointed_cases() {
    // Reference: an uninterrupted run of all three cases.
    let ref_dir = scratch("resume-ref");
    let mut reference = Runner::new("t", &opts(&ref_dir));
    run_cases(&mut reference, 3);
    reference.finalize();
    let ref_doc = parse(&std::fs::read_to_string(ref_dir.join("t.json")).unwrap()).unwrap();

    // "Killed" run: two cases complete, then the runner is dropped without
    // finalize (as a SIGKILL would) — only the partial checkpoint remains.
    let dir = scratch("resume");
    let mut first = Runner::new("t", &opts(&dir));
    run_cases(&mut first, 2);
    assert_eq!(first.executed(), 2);
    drop(first);
    assert!(dir.join("t.partial.json").exists());
    assert!(!dir.join("t.json").exists());

    // Resumed run: drives all three cases, but only `c` actually executes.
    let mut o = opts(&dir);
    o.resume = true;
    let mut second = Runner::new("t", &o);
    run_cases(&mut second, 3);
    assert_eq!(second.executed(), 1, "checkpointed cases must not re-run");
    let cached: Vec<bool> = second.records().iter().map(|r| r.cached).collect();
    assert_eq!(cached, [true, true, false]);
    second.finalize();

    // The finalized artifact is identical to the uninterrupted run's, modulo
    // wall-clock noise, and the partial checkpoint is gone.
    let doc = parse(&std::fs::read_to_string(dir.join("t.json")).unwrap()).unwrap();
    assert_eq!(normalized(&doc), normalized(&ref_doc));
    assert!(!dir.join("t.partial.json").exists());

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_retries_failed_cases_and_respects_key() {
    let dir = scratch("retry");
    let mut first = Runner::new("t", &opts(&dir));
    first.run_case("good", || -> CaseResult<u64> { Ok(1) });
    first.run_case("flaky", || -> CaseResult<u64> { panic!("first attempt fails") });
    drop(first);

    // A panicked checkpoint is retried (and now succeeds).
    let mut o = opts(&dir);
    o.resume = true;
    let mut second = Runner::new("t", &o);
    second.run_case("good", || -> CaseResult<u64> { Ok(1) });
    second.run_case("flaky", || -> CaseResult<u64> { Ok(2) });
    assert_eq!(second.executed(), 1, "only the panicked case re-runs");
    assert_eq!(second.records()[1].status, CaseStatus::Ok);
    drop(second);

    // A checkpoint under a different (scale, seed) key is NOT reused.
    let mut o2 = opts(&dir);
    o2.resume = true;
    o2.seed = 999;
    let mut third = Runner::new("t", &o2);
    third.run_case("good", || -> CaseResult<u64> { Ok(1) });
    assert_eq!(third.executed(), 1, "different seed must invalidate the checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_falls_back_to_final_dump() {
    // After finalize the partial is gone; a `--resume` run (as runall's
    // bounded retry issues) must still reuse the final dump's cases.
    let dir = scratch("final-fallback");
    let mut first = Runner::new("t", &opts(&dir));
    first.run_case("a", || -> CaseResult<u64> { Ok(10) });
    first.run_case("bad", || -> CaseResult<u64> { panic!("recorded failure") });
    first.finalize();
    assert!(!dir.join("t.partial.json").exists());

    let mut o = opts(&dir);
    o.resume = true;
    let mut second = Runner::new("t", &o);
    second.run_case("a", || -> CaseResult<u64> { Ok(10) });
    second.run_case("bad", || -> CaseResult<u64> { Ok(20) });
    assert_eq!(second.executed(), 1, "ok case reused from the final dump");
    assert_eq!(second.finalize().failures(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
