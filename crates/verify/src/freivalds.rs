//! Randomized result verification.
//!
//! [`freivalds_spgemm`] checks a claimed product `C = A·B` by comparing
//! `A·(B·x)` against `C·x` for `rounds` independent random vectors
//! `x ∈ {−1, +1}ⁿ`, at O(nnz) cost per round — asymptotically free next to
//! any SpGEMM that produced `C`. [`spmv_residual`] checks a claimed
//! `y = A·x` directly by recomputing the product row by row (SpMV is already
//! O(nnz), so the "cheap check" *is* the recomputation).
//!
//! # False-negative bound
//!
//! If `C ≠ A·B`, let `D = A·B − C ≠ 0` and pick any row `i` with a nonzero
//! entry. Over a uniform `x ∈ {−1, +1}ⁿ`, `(D·x)ᵢ = 0` requires the nonzero
//! terms of row `i` to cancel exactly; conditioning on the sign of one
//! nonzero coordinate shows this happens with probability ≤ 1/2. Rounds are
//! independent, so a corrupted product survives `k` rounds with probability
//! ≤ 2⁻ᵏ ([`false_negative_bound`]). The common SDC shapes do strictly
//! better: a *single* corrupted entry `c_ij += δ` makes `(D·x)ᵢ = δ·x_j`
//! with `|x_j| = 1`, so it is caught in **every** round (miss probability
//! 0, up to float tolerance); only correlated multi-entry corruptions that
//! can cancel (e.g. duplicate-index aliasing writing `+δ/−δ` into one row)
//! attain the 1/2-per-round worst case. The oracle's adversarial suite pins
//! both regimes.
//!
//! Verification compares floats, so "caught" is relative to the
//! [`Tolerance`] policy: a corruption smaller than the accumulated rounding
//! slack is accepted, which is exactly the set of corruptions the rest of
//! the system also treats as equal results.

use outerspace_gen::rng::{Rng, SmallRng};
use outerspace_sparse::{Csr, Index, SparseVector};

use crate::tol::Tolerance;

/// Default number of Freivalds rounds: `2⁻⁷ < 1%` worst-case false-negative
/// probability, matching the serve layer's ≥99% detection target.
pub const DEFAULT_ROUNDS: u32 = 7;

/// Worst-case probability that a corrupted product passes `rounds` rounds.
pub fn false_negative_bound(rounds: u32) -> f64 {
    0.5f64.powi(rounds.max(1) as i32)
}

/// Knobs for a verification pass. Fully deterministic: the same config
/// checking the same triple always draws the same probe vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyConfig {
    /// Independent probe rounds (≥ 1 enforced at use).
    pub rounds: u32,
    /// Base seed for the probe-vector stream.
    pub seed: u64,
    /// Float comparison policy for the probe products.
    pub tol: Tolerance,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            rounds: DEFAULT_ROUNDS,
            seed: 0x005e_edf4_eed5_u64,
            // abs is looser than the oracle's canonical compare because probe
            // sums accumulate nnz-many terms; rel rides the magnitude scale
            // computed per row, so it can stay at the repo-wide 1e-9.
            tol: Tolerance { abs: 1e-9, rel: 1e-9, max_ulps: 256 },
        }
    }
}

/// Why a claimed result failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The operands themselves are not conformable (`A.ncols != B.nrows` for
    /// SpGEMM, `x.len != A.ncols` for SpMV) — the claimed result cannot be a
    /// product of these inputs.
    OperandShape {
        /// Inner dimension on the left operand.
        left_inner: Index,
        /// Inner dimension on the right operand.
        right_inner: Index,
    },
    /// The claimed result has the wrong dimensions.
    Shape {
        /// Dimensions the product must have.
        expected: (Index, Index),
        /// Dimensions the claimed result has.
        got: (Index, Index),
    },
    /// A probe product disagreed: the claimed result is not `A·B` (resp.
    /// `A·x`) within tolerance.
    Mismatch {
        /// Probe round that caught the disagreement (0 for SpMV residuals).
        round: u32,
        /// Row where the probe products disagree.
        row: Index,
        /// `A·(B·x)` (resp. recomputed `(A·x)ᵢ`) at that row.
        lhs: f64,
        /// `C·x` (resp. claimed `yᵢ`) at that row.
        rhs: f64,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::OperandShape { left_inner, right_inner } => write!(
                f,
                "operands not conformable: inner dimensions {left_inner} vs {right_inner}"
            ),
            VerifyError::Shape { expected, got } => write!(
                f,
                "result shape {} x {} does not match product shape {} x {}",
                got.0, got.1, expected.0, expected.1
            ),
            VerifyError::Mismatch { round, row, lhs, rhs } => write!(
                f,
                "probe mismatch at round {round}, row {row}: {lhs} vs {rhs}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Per-round probe seed. Mixed through splitmix64 inside
/// [`SmallRng::seed_from_u64`], so a simple odd-multiplier spread suffices.
fn round_seed(base: u64, round: u32) -> u64 {
    base ^ (u64::from(round) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A uniform `{−1, +1}` probe vector of length `n`.
fn pm_one_vector(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 }).collect()
}

/// Checks the claimed product `c = a · b` with `cfg.rounds` Freivalds
/// probes. `Ok(())` means every probe agreed within tolerance.
///
/// # Errors
///
/// [`VerifyError::OperandShape`] / [`VerifyError::Shape`] for dimension
/// violations, [`VerifyError::Mismatch`] when a probe catches corruption.
pub fn freivalds_spgemm(a: &Csr, b: &Csr, c: &Csr, cfg: &VerifyConfig) -> Result<(), VerifyError> {
    if a.ncols() != b.nrows() {
        return Err(VerifyError::OperandShape { left_inner: a.ncols(), right_inner: b.nrows() });
    }
    let expected = (a.nrows(), b.ncols());
    if (c.nrows(), c.ncols()) != expected {
        return Err(VerifyError::Shape { expected, got: (c.nrows(), c.ncols()) });
    }
    let (m, k, n) = (a.nrows() as usize, b.nrows() as usize, b.ncols() as usize);
    for round in 0..cfg.rounds.max(1) {
        let mut rng = SmallRng::seed_from_u64(round_seed(cfg.seed, round));
        let x = pm_one_vector(&mut rng, n);
        // u = B·x, and mu[k] = Σⱼ |b_kj| (|x_j| = 1) bounding |u_k| and the
        // magnitude of what was summed into it.
        let mut u = vec![0.0f64; k];
        let mut mu = vec![0.0f64; k];
        for i in 0..k {
            let (cols, vals) = b.row(i as Index);
            let (mut s, mut mag) = (0.0, 0.0);
            for (&j, &v) in cols.iter().zip(vals) {
                s += v * x[j as usize];
                mag += v.abs();
            }
            u[i] = s;
            mu[i] = mag;
        }
        // v = A·u with mv[i] = Σₖ |a_ik|·mu[k], the magnitude actually
        // flowing through both stages of the left-hand probe.
        let mut v = vec![0.0f64; m];
        let mut mv = vec![0.0f64; m];
        for i in 0..m {
            let (cols, vals) = a.row(i as Index);
            let (mut s, mut mag) = (0.0, 0.0);
            for (&j, &av) in cols.iter().zip(vals) {
                s += av * u[j as usize];
                mag += av.abs() * mu[j as usize];
            }
            v[i] = s;
            mv[i] = mag;
        }
        // w = C·x with mw[i] = Σⱼ |c_ij|.
        for i in 0..m {
            let (cols, vals) = c.row(i as Index);
            let (mut w, mut mw) = (0.0, 0.0);
            for (&j, &cv) in cols.iter().zip(vals) {
                w += cv * x[j as usize];
                mw += cv.abs();
            }
            if !cfg.tol.close_scaled(v[i], w, mv[i].max(mw)) {
                return Err(VerifyError::Mismatch { round, row: i as Index, lhs: v[i], rhs: w });
            }
        }
    }
    Ok(())
}

/// Checks the claimed product `y = a · x` by recomputing each row of the
/// product with magnitude tracking. Deterministic and probe-free: SpMV is
/// O(nnz), so the check simply redoes the arithmetic in a fixed order.
///
/// # Errors
///
/// Same vocabulary as [`freivalds_spgemm`]; mismatches report `round: 0`.
pub fn spmv_residual(
    a: &Csr,
    x: &SparseVector,
    y: &SparseVector,
    cfg: &VerifyConfig,
) -> Result<(), VerifyError> {
    if x.len != a.ncols() {
        return Err(VerifyError::OperandShape { left_inner: a.ncols(), right_inner: x.len });
    }
    if y.len != a.nrows() {
        return Err(VerifyError::Shape {
            expected: (a.nrows(), 1),
            got: (y.len, 1),
        });
    }
    let xd = x.to_dense();
    let yd = y.to_dense();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let (mut s, mut mag) = (0.0, 0.0);
        for (&j, &v) in cols.iter().zip(vals) {
            let term = v * xd[j as usize];
            s += term;
            mag += term.abs();
        }
        let claimed = yd[i as usize];
        if !cfg.tol.close_scaled(s, claimed, mag) {
            return Err(VerifyError::Mismatch { round: 0, row: i, lhs: s, rhs: claimed });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{uniform, vector};
    use outerspace_sparse::ops;

    fn operands(seed: u64) -> (Csr, Csr) {
        let a = uniform::matrix(48, 48, 300, seed);
        let b = uniform::matrix(48, 48, 300, seed ^ 0x9e37);
        (a, b)
    }

    #[test]
    fn clean_products_pass_every_seed() {
        let cfg = VerifyConfig::default();
        for seed in 0..16 {
            let (a, b) = operands(seed);
            let c = ops::spgemm_reference(&a, &b).unwrap();
            assert_eq!(freivalds_spgemm(&a, &b, &c, &cfg), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn single_entry_corruption_is_always_caught() {
        // A lone perturbed entry contributes δ·x_j with |x_j| = 1 to one
        // probe row: detection per round has probability 1, so even a single
        // round must catch it for every seed.
        let cfg = VerifyConfig { rounds: 1, ..VerifyConfig::default() };
        for seed in 0..16 {
            let (a, b) = operands(seed);
            let mut c = ops::spgemm_reference(&a, &b).unwrap();
            assert!(c.nnz() > 0);
            let idx = c.nnz() / 2;
            c.values_mut()[idx] *= 1.0 + 3e-2;
            assert!(
                matches!(freivalds_spgemm(&a, &b, &c, &cfg), Err(VerifyError::Mismatch { .. })),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn verification_is_deterministic() {
        let cfg = VerifyConfig::default();
        let (a, b) = operands(7);
        let mut c = ops::spgemm_reference(&a, &b).unwrap();
        c.values_mut()[0] += 0.5;
        let e1 = freivalds_spgemm(&a, &b, &c, &cfg);
        let e2 = freivalds_spgemm(&a, &b, &c, &cfg);
        assert_eq!(e1, e2);
        assert!(e1.is_err());
    }

    #[test]
    fn shape_violations_are_typed() {
        let cfg = VerifyConfig::default();
        let a = uniform::matrix(8, 8, 20, 1);
        let b = uniform::matrix(8, 8, 20, 2);
        let wrong_dims = Csr::zero(9, 8);
        assert!(matches!(
            freivalds_spgemm(&a, &b, &wrong_dims, &cfg),
            Err(VerifyError::Shape { expected: (8, 8), got: (9, 8) })
        ));
        let b_bad = uniform::matrix(9, 8, 20, 3);
        assert!(matches!(
            freivalds_spgemm(&a, &b_bad, &wrong_dims, &cfg),
            Err(VerifyError::OperandShape { left_inner: 8, right_inner: 9 })
        ));
    }

    #[test]
    fn spmv_residual_catches_perturbations_and_passes_clean() {
        let cfg = VerifyConfig::default();
        let a = uniform::matrix(32, 32, 160, 11);
        let x = vector::sparse(32, 0.4, 13);
        let yd = ops::spmv_reference(&a, &x.to_dense()).unwrap();
        let y = SparseVector::from_dense(&yd);
        assert_eq!(spmv_residual(&a, &x, &y, &cfg), Ok(()));

        let mut bad = y.clone();
        assert!(!bad.values.is_empty());
        let last = bad.values.len() - 1;
        bad.values[last] = -bad.values[last] - 1.0;
        assert!(matches!(
            spmv_residual(&a, &x, &bad, &cfg),
            Err(VerifyError::Mismatch { round: 0, .. })
        ));

        let short = SparseVector { len: 31, indices: vec![], values: vec![] };
        assert!(matches!(spmv_residual(&a, &x, &short, &cfg), Err(VerifyError::Shape { .. })));
    }

    #[test]
    fn bound_shrinks_geometrically() {
        assert_eq!(false_negative_bound(1), 0.5);
        assert_eq!(false_negative_bound(7), 1.0 / 128.0);
        assert!(false_negative_bound(DEFAULT_ROUNDS) < 0.01);
        // rounds = 0 is clamped to one round everywhere.
        assert_eq!(false_negative_bound(0), 0.5);
    }
}
