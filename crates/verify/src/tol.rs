//! ULP-aware float comparison policy.
//!
//! Sparse kernels sum the same elementary products in different orders (heap
//! order, sort order, hash-probe order, per-thread block order), so bitwise
//! equality is the wrong bar. Two values are *close* when any of three
//! criteria holds — absolute slack for near-zero accumulations, relative
//! slack for the common case, and a ULP budget that scales correctly across
//! magnitudes where a fixed relative epsilon misbehaves.
//!
//! This policy historically lived in `oracle::compare`; it moved here so the
//! verification layer (which the service depends on) and the oracle (which
//! depends on the service) can share it without a dependency cycle. The
//! oracle re-exports it under the old path.

use outerspace_sparse::Value;

/// The tolerance policy (documented in DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute slack, covering sums that cancel toward zero.
    pub abs: f64,
    /// Relative slack against the larger magnitude.
    pub rel: f64,
    /// Maximum units-in-the-last-place distance.
    pub max_ulps: u64,
}

impl Default for Tolerance {
    fn default() -> Self {
        // rel mirrors the 1e-9 the repo's hand-written differential tests
        // use; 256 ULPs ≈ 6e-14 relative for f64, a strictly tighter backstop
        // that exists for magnitudes where abs/rel are miscalibrated.
        Tolerance { abs: 1e-12, rel: 1e-9, max_ulps: 256 }
    }
}

impl Tolerance {
    /// Are `x` and `y` equal under this policy?
    pub fn close(&self, x: Value, y: Value) -> bool {
        if x == y {
            return true; // covers ±0.0 and exact equality
        }
        if x.is_nan() || y.is_nan() {
            return false;
        }
        let diff = (x - y).abs();
        if diff <= self.abs {
            return true;
        }
        if diff <= self.rel * x.abs().max(y.abs()) {
            return true;
        }
        ulp_distance(x, y) <= self.max_ulps
    }

    /// Are `x` and `y` equal when both are accumulations whose rounding
    /// error is governed by `scale` (a magnitude sum over the summed terms)
    /// rather than by the results themselves?
    ///
    /// A Freivalds probe compares `A·(B·x)` against `C·x`: both sides sum
    /// many products whose individual magnitudes can dwarf the (possibly
    /// cancelled) result, so the relative criterion must use the magnitude
    /// of what was summed, not of what survived.
    pub fn close_scaled(&self, x: Value, y: Value, scale: Value) -> bool {
        if x == y {
            return true;
        }
        if x.is_nan() || y.is_nan() {
            return false;
        }
        let diff = (x - y).abs();
        diff <= self.abs + self.rel * scale.max(x.abs()).max(y.abs())
    }
}

/// Units-in-the-last-place distance between two finite doubles, via the
/// standard monotone mapping of IEEE-754 bit patterns onto a signed integer
/// line. Opposite-sign pairs measure through zero; non-finite operands
/// return `u64::MAX`.
pub fn ulp_distance(x: f64, y: f64) -> u64 {
    if !x.is_finite() || !y.is_finite() {
        return u64::MAX;
    }
    fn ordered(v: f64) -> i64 {
        let bits = v.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_add(bits.wrapping_neg()) // map negatives below zero
        } else {
            bits
        }
    }
    let (a, b) = (ordered(x), ordered(y));
    a.abs_diff(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        // Distance across zero measures through both subnormal ranges.
        assert_eq!(
            ulp_distance(f64::MIN_POSITIVE, -f64::MIN_POSITIVE),
            ulp_distance(f64::MIN_POSITIVE, 0.0) * 2
        );
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(f64::INFINITY, 1.0), u64::MAX);
    }

    #[test]
    fn tolerance_accepts_reordered_sums() {
        let tol = Tolerance::default();
        let forward: f64 = (1..=1000).map(|i| 1.0 / i as f64).sum();
        let backward: f64 = (1..=1000).rev().map(|i| 1.0 / i as f64).sum();
        assert!(tol.close(forward, backward));
        assert!(!tol.close(forward, forward + 1e-3));
        assert!(!tol.close(1.0, f64::NAN));
    }

    #[test]
    fn scaled_tolerance_uses_the_summed_magnitude() {
        let tol = Tolerance::default();
        // Two accumulations of magnitude-1e6 terms that cancelled to ~0:
        // their difference is rounding noise relative to 1e6, not to 0.
        assert!(tol.close_scaled(1e-11, -1e-11, 1e6));
        // ... but a genuine disagreement is still caught.
        assert!(!tol.close_scaled(0.5, 0.0, 1e6));
        assert!(!tol.close_scaled(1.0, f64::NAN, 1e6));
    }
}
