//! Result verification for sparse kernels.
//!
//! This crate answers one question cheaply: *is this claimed product
//! actually the product of these operands?* It exists because every fault
//! the simulator and service model elsewhere is **detected** — ECC retries,
//! typed errors, watchdogged compute — while a bit flip that escapes ECC
//! (or a buggy kernel variant) produces a plausible-looking wrong answer
//! that would otherwise be delivered, cached, and re-served indefinitely.
//!
//! Two checkers (see [`freivalds`] for the math and the false-negative
//! bound):
//!
//! * [`freivalds_spgemm`] — randomized `A·(B·x)` vs `C·x` probes over
//!   deterministic ±1 vectors, O(nnz) per round.
//! * [`spmv_residual`] — direct row-by-row recomputation for SpMV.
//!
//! The float [`Tolerance`] policy lives here (module [`tol`]) and is
//! re-exported by `oracle::compare` for backward compatibility; keeping it
//! in this leaf crate lets both the oracle and the serve layer share it
//! without a dependency cycle.

#![warn(missing_docs)]

pub mod freivalds;
pub mod tol;

pub use freivalds::{
    false_negative_bound, freivalds_spgemm, spmv_residual, VerifyConfig, VerifyError,
    DEFAULT_ROUNDS,
};
pub use tol::{ulp_distance, Tolerance};
