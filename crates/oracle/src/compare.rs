//! ULP-aware comparison of canonicalized results.
//!
//! The implementations sum the same elementary products in different orders
//! (heap order, sort order, hash-probe order, per-thread block order), so
//! bitwise equality is the wrong bar. Two values are *close* when any of
//! three criteria holds — absolute slack for near-zero accumulations,
//! relative slack for the common case, and a ULP budget that scales
//! correctly across magnitudes where a fixed relative epsilon misbehaves.
//! An entry missing on one side compares against `0.0` (canonicalization
//! guarantees stored values are non-zero, see [`crate::canon`]).

use crate::canon::CanonMatrix;
use outerspace_sparse::{Index, Value};

// The tolerance policy and the ULP metric moved to the leaf `verify` crate
// (PR 7) so the service's verification tier can share them without a
// dependency cycle (`oracle → serve → verify`). Re-exported here so every
// existing `oracle::compare::Tolerance` call site keeps working.
pub use outerspace_verify::{ulp_distance, Tolerance};

/// One coordinate where two results disagree. Missing entries are reported
/// with value `0.0` on the absent side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryDiff {
    /// Row of the disagreeing coordinate.
    pub row: Index,
    /// Column of the disagreeing coordinate.
    pub col: Index,
    /// Value on the left (reference) side.
    pub left: Value,
    /// Value on the right (candidate) side.
    pub right: Value,
}

/// Why two canonical results are not equal.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// The results have different dimensions.
    Shape {
        /// Left (reference) shape.
        left: (Index, Index),
        /// Right (candidate) shape.
        right: (Index, Index),
    },
    /// The results disagree at one or more coordinates.
    Entries {
        /// The first few disagreements (capped at [`MAX_REPORTED_DIFFS`]).
        diffs: Vec<EntryDiff>,
        /// Total number of disagreeing coordinates.
        total: usize,
    },
}

/// Cap on diffs carried inside [`CompareError::Entries`].
pub const MAX_REPORTED_DIFFS: usize = 8;

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::Shape { left, right } => write!(
                f,
                "shape mismatch: {} x {} vs {} x {}",
                left.0, left.1, right.0, right.1
            ),
            CompareError::Entries { diffs, total } => {
                write!(f, "{total} disagreeing entr{}", if *total == 1 { "y" } else { "ies" })?;
                for d in diffs {
                    write!(f, "; ({},{}): {} vs {}", d.row, d.col, d.left, d.right)?;
                }
                if *total > diffs.len() {
                    write!(f, "; …")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompareError {}

/// Compares two canonical matrices under `tol`. `Ok(())` means equal.
pub fn compare(
    left: &CanonMatrix,
    right: &CanonMatrix,
    tol: &Tolerance,
) -> Result<(), CompareError> {
    if left.nrows != right.nrows || left.ncols != right.ncols {
        return Err(CompareError::Shape {
            left: (left.nrows, left.ncols),
            right: (right.nrows, right.ncols),
        });
    }
    let mut diffs = Vec::new();
    let mut total = 0usize;
    let mut record = |row, col, l, r| {
        total += 1;
        if diffs.len() < MAX_REPORTED_DIFFS {
            diffs.push(EntryDiff { row, col, left: l, right: r });
        }
    };
    // Two-pointer sweep over the sorted entry lists; a coordinate present on
    // only one side compares against 0.0.
    let (mut p, mut q) = (0usize, 0usize);
    while p < left.entries.len() || q < right.entries.len() {
        let lkey = left.entries.get(p).map(|&(r, c, _)| (r, c));
        let rkey = right.entries.get(q).map(|&(r, c, _)| (r, c));
        match (lkey, rkey) {
            (Some(lk), Some(rk)) if lk == rk => {
                let (lv, rv) = (left.entries[p].2, right.entries[q].2);
                if !tol.close(lv, rv) {
                    record(lk.0, lk.1, lv, rv);
                }
                p += 1;
                q += 1;
            }
            (Some(lk), Some(rk)) if lk < rk => {
                let lv = left.entries[p].2;
                if !tol.close(lv, 0.0) {
                    record(lk.0, lk.1, lv, 0.0);
                }
                p += 1;
            }
            (Some(_), Some(rk)) => {
                let rv = right.entries[q].2;
                if !tol.close(0.0, rv) {
                    record(rk.0, rk.1, 0.0, rv);
                }
                q += 1;
            }
            (Some(lk), None) => {
                let lv = left.entries[p].2;
                if !tol.close(lv, 0.0) {
                    record(lk.0, lk.1, lv, 0.0);
                }
                p += 1;
            }
            (None, Some(rk)) => {
                let rv = right.entries[q].2;
                if !tol.close(0.0, rv) {
                    record(rk.0, rk.1, 0.0, rv);
                }
                q += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    if total > 0 {
        return Err(CompareError::Entries { diffs, total });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // `ulp_distance_basics` and `tolerance_accepts_reordered_sums` moved to
    // `verify::tol` along with the implementation.

    #[test]
    fn compare_reports_missing_and_mismatched_entries() {
        let tol = Tolerance::default();
        let l = CanonMatrix::from_triples(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        let r = CanonMatrix::from_triples(2, 2, vec![(0, 0, 1.0), (1, 0, 3.0)]);
        let err = compare(&l, &r, &tol).unwrap_err();
        match err {
            CompareError::Entries { diffs, total } => {
                assert_eq!(total, 2);
                assert_eq!(diffs[0], EntryDiff { row: 1, col: 0, left: 0.0, right: 3.0 });
                assert_eq!(diffs[1], EntryDiff { row: 1, col: 1, left: 2.0, right: 0.0 });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compare_shape_mismatch() {
        let tol = Tolerance::default();
        let l = CanonMatrix::from_triples(2, 2, vec![]);
        let r = CanonMatrix::from_triples(2, 3, vec![]);
        assert!(matches!(compare(&l, &r, &tol), Err(CompareError::Shape { .. })));
    }

    #[test]
    fn near_zero_cancellation_tolerated() {
        let tol = Tolerance::default();
        // One side cancelled to a tiny residue, the other pruned exactly.
        let l = CanonMatrix::from_triples(1, 1, vec![(0, 0, 1e-15)]);
        let r = CanonMatrix::from_triples(1, 1, vec![]);
        assert!(compare(&l, &r, &tol).is_ok());
    }
}
