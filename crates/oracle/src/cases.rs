//! Deterministic generation of oracle test cases.
//!
//! Every case is a pure function of `(base_seed, index, scale)`: seed `i`
//! rotates through the workload families — the four `gen` distributions the
//! benchmarks draw from (uniform, R-MAT, banded, power-law) plus the
//! adversarial shapes the paper's kernels are most likely to mishandle
//! (empty rows/columns, all-zero operands, a single dense column, COO input
//! with duplicate coordinates, degenerate `1×N` / `N×1` products) and
//! *reject* cases whose inner dimensions disagree, which every
//! implementation must refuse identically (the [`DimError`] contract).
//!
//! `scale` divides the base dimension the same way the bench harness's
//! `--scale` divides workload sizes, so `oracle --scale 48` is a sub-second
//! smoke and `--scale 1` exercises four-figure dimensions.
//!
//! [`DimError`]: outerspace_sparse::DimError

use outerspace_gen::{banded, powerlaw, rmat, uniform, vector};
use outerspace_sparse::{Coo, Csr, Index, SparseVector};

/// One SpGEMM differential case: compute `A × B` everywhere and compare.
#[derive(Debug, Clone)]
pub struct SpgemmCase {
    /// Stable case name (`family@seed`), used for runner resume keys and
    /// repro directories.
    pub name: String,
    /// Workload family the rotation picked.
    pub family: &'static str,
    /// The RNG seed the operands were drawn from.
    pub seed: u64,
    /// Left operand.
    pub a: Csr,
    /// Right operand.
    pub b: Csr,
    /// True when the operands are malformed and every implementation must
    /// reject them (inner-dimension mismatch).
    pub expect_reject: bool,
}

/// One SpMV differential case: compute `y = A × x` everywhere and compare.
#[derive(Debug, Clone)]
pub struct SpmvCase {
    /// Stable case name (`family@seed`).
    pub name: String,
    /// Workload family the rotation picked.
    pub family: &'static str,
    /// The RNG seed the operands were drawn from.
    pub seed: u64,
    /// The matrix operand (CR; implementations convert as they need).
    pub a: Csr,
    /// The vector operand.
    pub x: SparseVector,
    /// True when `x.len != a.ncols()` and every path must reject.
    pub expect_reject: bool,
}

/// Base dimension for `scale = 1`, divided by `--scale` like the bench
/// workloads (floor keeps degenerate scales usable).
pub fn base_dim(scale: u32) -> Index {
    (768 / scale.max(1)).max(8)
}

/// An all-zero `n × m` matrix (every row and column empty).
fn zero_matrix(nrows: Index, ncols: Index) -> Csr {
    Coo::new(nrows, ncols).to_csr()
}

/// A matrix whose non-zeros all live in one dense column — the worst case
/// for outer-product chunking (one enormous partial-product chunk).
fn single_dense_column(nrows: Index, ncols: Index, col: Index, seed: u64) -> Csr {
    let mut coo = Coo::new(nrows, ncols);
    for r in 0..nrows {
        // Deterministic, seed-dependent, and free of exact cancellations.
        let v = 0.5 + ((seed.wrapping_add(r as u64 * 2654435761)) % 1000) as f64 / 1000.0;
        coo.push(r, col, v);
    }
    coo.to_csr()
}

/// A matrix assembled from COO triplets with every coordinate pushed twice
/// (once positive, once scaled) — exercises duplicate merging in the
/// COO→CR conversion that feeds every kernel.
fn duplicate_entry_coo(n: Index, nnz: usize, seed: u64) -> Csr {
    let base = uniform::matrix(n, n, nnz, seed);
    let mut coo = Coo::new(n, n);
    for (r, c, v) in base.iter() {
        coo.push(r, c, v);
        coo.push(r, c, 0.5 * v);
    }
    coo.to_csr()
}

/// A matrix with exactly one dense row — paired with a dense-column left
/// operand it makes every partial-product chunk as large as possible.
fn single_dense_row(nrows: Index, ncols: Index, row: Index, seed: u64) -> Csr {
    let mut coo = Coo::new(nrows, ncols);
    for c in 0..ncols {
        let v = 0.5 + ((seed.wrapping_add(c as u64 * 2246822519)) % 1000) as f64 / 1000.0;
        coo.push(row, c, v);
    }
    coo.to_csr()
}

/// Heavily skewed row lengths: one row holding `wide` entries amid rows
/// holding exactly one. Condensing such a matrix (the SpArch path) yields
/// `wide` condensed columns of sharply unequal population, so the Huffman
/// merge scheduler sees maximally skewed chunk counts — and when `wide`
/// exceeds the merge-tree width, partial results must spill.
fn skewed_row_lengths(n: Index, wide: usize, seed: u64) -> Csr {
    let mut coo = Coo::new(n, n);
    for c in 0..(wide.min(n as usize) as Index) {
        let v = 0.5 + ((seed.wrapping_add(c as u64 * 2654435761)) % 1000) as f64 / 1000.0;
        coo.push(0, c, v);
    }
    for r in 1..n {
        let c = (seed.wrapping_add(r as u64 * 40503) % n as u64) as Index;
        let v = 0.5 + ((seed.wrapping_add(r as u64 * 2246822519)) % 1000) as f64 / 1000.0;
        coo.push(r, c, v);
    }
    coo.to_csr()
}

/// The SpGEMM family rotation, indexed by `i % SPGEMM_FAMILIES`.
pub const SPGEMM_FAMILIES: u64 = 15;

/// Generates the `i`-th SpGEMM case for `(base_seed, scale)`.
pub fn spgemm_case(base_seed: u64, i: u64, scale: u32) -> SpgemmCase {
    let n = base_dim(scale);
    let nnz = (n as usize) * 4;
    let seed = base_seed.wrapping_add(i);
    let (family, a, b, expect_reject) = match i % SPGEMM_FAMILIES {
        0 => (
            "uniform_square",
            uniform::matrix(n, n, nnz, seed),
            uniform::matrix(n, n, nnz, seed ^ 0x9e37),
            false,
        ),
        1 => {
            // Rectangular chain with every dimension distinct, so any
            // transpose/relabel bug in the CC paths surfaces as a shape or
            // entry mismatch.
            let (p, k, q) = (n, n / 2 + 1, n + 3);
            (
                "uniform_rect",
                uniform::matrix(p, k, nnz / 2, seed),
                uniform::matrix(k, q, nnz / 2, seed ^ 0x9e37),
                false,
            )
        }
        2 => {
            let g = rmat::graph500(n.next_power_of_two(), nnz, seed);
            ("rmat", g.clone(), g, false)
        }
        3 => {
            let m = banded::circulant(n, 5.min(n as usize), seed);
            ("banded", m.clone(), m, false)
        }
        4 => {
            let g = powerlaw::graph(n, nnz, seed);
            ("powerlaw", g.clone(), g, false)
        }
        5 => (
            // nnz ≪ n guarantees many empty rows *and* columns on both sides.
            "sparse_empty_rows_cols",
            uniform::matrix(n, n, (n / 4).max(1) as usize, seed),
            uniform::matrix(n, n, (n / 4).max(1) as usize, seed ^ 0x9e37),
            false,
        ),
        6 => (
            "zero_matrix",
            zero_matrix(n, n),
            uniform::matrix(n, n, nnz, seed),
            false,
        ),
        7 => (
            "single_dense_column",
            single_dense_column(n, n, n / 2, seed),
            uniform::matrix(n, n, nnz, seed ^ 0x9e37),
            false,
        ),
        8 => (
            "duplicate_coo",
            duplicate_entry_coo(n, nnz / 2, seed),
            duplicate_entry_coo(n, nnz / 2, seed ^ 0x9e37),
            false,
        ),
        9 => (
            // (1×N)·(N×1) and its transpose sibling stress the "one row" /
            // "one chunk per product" boundaries of the merge phase.
            "outer_vector_product",
            uniform::matrix(n, 1, (n / 2).max(1) as usize, seed).transpose(),
            uniform::matrix(n, 1, (n / 2).max(1) as usize, seed ^ 0x9e37),
            false,
        ),
        10 => (
            "rank_one_blowup",
            uniform::matrix(n, 1, (n / 2).max(1) as usize, seed),
            uniform::matrix(1, n, (n / 2).max(1) as usize, seed ^ 0x9e37),
            false,
        ),
        11 => (
            // Inner dimensions disagree by one: every path must reject.
            "reject_dim_mismatch",
            uniform::matrix(n, n + 1, nnz, seed),
            uniform::matrix(n, n, nnz, seed ^ 0x9e37),
            true,
        ),
        12 => (
            // Allocation pressure, small end: B has one non-zero per row, so
            // every partial-product chunk holds exactly one entry and the
            // multiply phase allocates the maximum number of chunks per
            // elementary product (the shape the arena intermediate exists
            // for).
            "alloc_many_tiny_chunks",
            uniform::matrix(n, n, (n as usize) * 8, seed),
            banded::circulant(n, 1, seed ^ 0x9e37),
            false,
        ),
        13 => (
            // Allocation pressure, large end: a dense column of A against
            // the matching dense row of B makes every result row a single
            // enormous chunk (n entries) — an n² intermediate from n non-zero
            // inputs per side.
            "alloc_one_huge_chunk",
            single_dense_column(n, n, 0, seed),
            single_dense_row(n, n, 0, seed ^ 0x9e37),
            false,
        ),
        _ => (
            // Skewed chunk counts for the SpArch merge tree: one row wider
            // than the default tree width (96 > 64 ways, forcing partial
            // spills at full scale) amid single-entry rows whose condensed
            // streams merge in one leaf round.
            "merge_tree_skew",
            skewed_row_lengths(n, 96, seed),
            uniform::matrix(n, n, nnz, seed ^ 0x9e37),
            false,
        ),
    };
    SpgemmCase { name: format!("{family}@{seed}"), family, seed, a, b, expect_reject }
}

/// The SpMV family rotation, indexed by `i % SPMV_FAMILIES`.
pub const SPMV_FAMILIES: u64 = 6;

/// Generates the `i`-th SpMV case for `(base_seed, scale)`.
pub fn spmv_case(base_seed: u64, i: u64, scale: u32) -> SpmvCase {
    let n = base_dim(scale);
    let nnz = (n as usize) * 4;
    let seed = base_seed.wrapping_add(i);
    let (family, a, x, expect_reject) = match i % SPMV_FAMILIES {
        0 => (
            "uniform_sparse_x",
            uniform::matrix(n, n, nnz, seed),
            vector::sparse(n, 0.25, seed ^ 0x5bd1),
            false,
        ),
        1 => (
            "rect_dense_x",
            uniform::matrix(n / 2 + 1, n, nnz / 2, seed),
            vector::sparse(n, 1.0, seed ^ 0x5bd1),
            false,
        ),
        2 => (
            "banded_sparse_x",
            banded::circulant(n, 3.min(n as usize), seed),
            vector::sparse(n, 0.1, seed ^ 0x5bd1),
            false,
        ),
        3 => (
            "empty_x",
            uniform::matrix(n, n, nnz, seed),
            SparseVector { len: n, indices: vec![], values: vec![] },
            false,
        ),
        4 => (
            "zero_matrix_x",
            zero_matrix(n, n),
            vector::sparse(n, 0.5, seed ^ 0x5bd1),
            false,
        ),
        _ => (
            "reject_len_mismatch",
            uniform::matrix(n, n, nnz, seed),
            vector::sparse(n + 1, 0.25, seed ^ 0x5bd1),
            true,
        ),
    };
    SpmvCase { name: format!("{family}@{seed}"), family, seed, a, x, expect_reject }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        for i in 0..SPGEMM_FAMILIES {
            let c1 = spgemm_case(42, i, 48);
            let c2 = spgemm_case(42, i, 48);
            assert_eq!(c1.name, c2.name);
            assert_eq!(c1.a, c2.a);
            assert_eq!(c1.b, c2.b);
        }
        for i in 0..SPMV_FAMILIES {
            let c1 = spmv_case(42, i, 48);
            let c2 = spmv_case(42, i, 48);
            assert_eq!(c1.a, c2.a);
            assert_eq!(c1.x.indices, c2.x.indices);
        }
    }

    #[test]
    fn rotation_covers_adversarial_shapes() {
        let families: Vec<&str> =
            (0..SPGEMM_FAMILIES).map(|i| spgemm_case(1, i, 48).family).collect();
        for needed in [
            "zero_matrix",
            "single_dense_column",
            "duplicate_coo",
            "outer_vector_product",
            "rank_one_blowup",
            "reject_dim_mismatch",
            "sparse_empty_rows_cols",
            "alloc_many_tiny_chunks",
            "alloc_one_huge_chunk",
            "merge_tree_skew",
        ] {
            assert!(families.contains(&needed), "missing family {needed}");
        }
    }

    #[test]
    fn valid_cases_have_compatible_dims_and_reject_cases_do_not() {
        for i in 0..SPGEMM_FAMILIES {
            let c = spgemm_case(7, i, 48);
            if c.expect_reject {
                assert_ne!(c.a.ncols(), c.b.nrows(), "{}", c.name);
            } else {
                assert_eq!(c.a.ncols(), c.b.nrows(), "{}", c.name);
            }
        }
        for i in 0..SPMV_FAMILIES {
            let c = spmv_case(7, i, 48);
            if c.expect_reject {
                assert_ne!(c.a.ncols(), c.x.len, "{}", c.name);
            } else {
                assert_eq!(c.a.ncols(), c.x.len, "{}", c.name);
            }
        }
    }

    #[test]
    fn adversarial_structure_is_as_advertised() {
        let zero = spgemm_case(1, 6, 48);
        assert_eq!(zero.a.nnz(), 0);
        let dense_col = spgemm_case(1, 7, 48);
        assert_eq!(dense_col.a.nnz(), dense_col.a.nrows() as usize);
        let outer_vec = spgemm_case(1, 9, 48);
        assert_eq!(outer_vec.a.nrows(), 1);
        assert_eq!(outer_vec.b.ncols(), 1);
        let blowup = spgemm_case(1, 10, 48);
        assert_eq!((blowup.a.ncols(), blowup.b.nrows()), (1, 1));
        let tiny = spgemm_case(1, 12, 48);
        // One non-zero per B row → every multiply-phase chunk has 1 entry.
        for r in 0..tiny.b.nrows() {
            assert_eq!(tiny.b.row(r).0.len(), 1, "{}", tiny.name);
        }
        let huge = spgemm_case(1, 13, 48);
        assert_eq!(huge.a.nnz(), huge.a.nrows() as usize);
        assert_eq!(huge.b.row(0).0.len(), huge.b.ncols() as usize);
        assert_eq!(huge.b.nnz(), huge.b.ncols() as usize);
        let skew = spgemm_case(1, 14, 48);
        let n = skew.a.nrows();
        assert_eq!(skew.a.row(0).0.len(), 96.min(n as usize), "{}", skew.name);
        for r in 1..n {
            assert_eq!(skew.a.row(r).0.len(), 1, "{}", skew.name);
        }
    }
}
