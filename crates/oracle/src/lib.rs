//! Property-based differential-testing oracle for the OuterSPACE
//! reproduction.
//!
//! The workspace carries five SpGEMM implementations (the outer-product
//! kernel in four configurations plus the simulator's functional path) and
//! four baseline kernels, two SpMV paths, and a web of format conversions —
//! all expected to compute the *same* linear algebra. This crate turns that
//! redundancy into a test oracle:
//!
//! * [`cases`] draws deterministic workloads from every `gen` distribution
//!   plus adversarial shapes (empty rows/columns, all-zero operands, a
//!   single dense column, duplicate-entry COO, `1×N`/`N×1` products) and
//!   malformed operands every path must *reject* identically;
//! * [`impls`] wraps every public SpGEMM/SpMV entry point — including the
//!   simulator — behind one registry signature;
//! * [`canon`] + [`compare`] canonicalize results (sorted coordinates,
//!   merged duplicates, no explicit zeros) and compare them under an
//!   absolute + relative + ULP tolerance;
//! * [`shrink`] reduces a failing pair to a locally minimal one by greedy
//!   bisection, entry thinning and value simplification;
//! * [`repro`] persists the shrunk input as replayable `.mtx` files plus a
//!   seed manifest under `oracle_repros/`;
//! * [`driver`] runs the sweep through the bench crate's crash-safe
//!   [`Runner`](outerspace_bench::runner::Runner), emitting the same
//!   `{manifest, cases}` JSON report shape as the figure harnesses.
//!
//! The `oracle` binary (`cargo run --release -p outerspace-oracle --bin
//! oracle`) fronts all of it: `--seeds N` sweeps, `--impl-subset` narrows,
//! `--replay <dir>` re-checks a stored repro, and `--inject-fault` proves
//! the detection pipeline end to end with a deliberately broken kernel.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canon;
pub mod cases;
pub mod compare;
pub mod driver;
pub mod impls;
pub mod repro;
pub mod shrink;

pub use canon::CanonMatrix;
pub use compare::{compare, CompareError, Tolerance};
pub use driver::{run, OracleConfig};
pub use repro::{Repro, ReproKind};
