//! Canonical matrix form for cross-implementation comparison.
//!
//! The five SpGEMM implementations legitimately disagree on *representation*:
//! chunk order differs between sequential and parallel runs, ESC and the hash
//! kernel lay rows out through different intermediates, and kernels disagree
//! about keeping entries whose accumulation cancelled to exactly `0.0`
//! (Gustavson keeps every touched position, the inner-product kernel keeps
//! every matched position, pruning drops them). [`CanonMatrix`] removes all
//! of that before the comparison: entries are sorted by `(row, col)`,
//! duplicate coordinates are summed in that order, and entries whose final
//! value is exactly `0.0` are dropped. Comparison then treats an absent
//! coordinate as `0.0`, so a kernel that *stores* a cancelled zero and one
//! that prunes it canonicalize identically.

use outerspace_sparse::{Coo, Csc, Csr, Dense, Index, SparseVector, Value};

/// A matrix reduced to the canonical triplet form described in the module
/// docs: sorted coordinates, merged duplicates, no explicit zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonMatrix {
    /// Number of rows.
    pub nrows: Index,
    /// Number of columns.
    pub ncols: Index,
    /// `(row, col, value)` sorted by `(row, col)`, duplicate-free,
    /// zero-free.
    pub entries: Vec<(Index, Index, Value)>,
}

impl CanonMatrix {
    /// Canonicalizes an arbitrary triplet stream.
    pub fn from_triples<I>(nrows: Index, ncols: Index, triples: I) -> CanonMatrix
    where
        I: IntoIterator<Item = (Index, Index, Value)>,
    {
        let mut entries: Vec<(Index, Index, Value)> = triples.into_iter().collect();
        // Stable sort: duplicates keep stream order, so their values sum in
        // a deterministic order.
        entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(Index, Index, Value)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);
        CanonMatrix { nrows, ncols, entries: merged }
    }

    /// Canonicalizes a CR (CSR) matrix.
    pub fn from_csr(m: &Csr) -> CanonMatrix {
        CanonMatrix::from_triples(m.nrows(), m.ncols(), m.iter())
    }

    /// Canonicalizes a CC (CSC) matrix.
    pub fn from_csc(m: &Csc) -> CanonMatrix {
        CanonMatrix::from_triples(m.nrows(), m.ncols(), m.iter())
    }

    /// Canonicalizes a COO matrix (duplicates summed).
    pub fn from_coo(m: &Coo) -> CanonMatrix {
        CanonMatrix::from_triples(m.nrows(), m.ncols(), m.iter())
    }

    /// Canonicalizes a dense matrix (structural zeros never stored).
    pub fn from_dense(m: &Dense) -> CanonMatrix {
        let mut entries = Vec::new();
        for r in 0..m.nrows() {
            for c in 0..m.ncols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    entries.push((r, c, v));
                }
            }
        }
        CanonMatrix { nrows: m.nrows(), ncols: m.ncols(), entries }
    }

    /// Canonicalizes a sparse vector as an `len × 1` matrix.
    pub fn from_sparse_vector(x: &SparseVector) -> CanonMatrix {
        CanonMatrix::from_triples(
            x.len,
            1,
            x.indices.iter().zip(&x.values).map(|(&i, &v)| (i, 0, v)),
        )
    }

    /// Canonicalizes a dense vector as an `len × 1` matrix.
    pub fn from_dense_vector(x: &[Value]) -> CanonMatrix {
        CanonMatrix::from_triples(
            x.len() as Index,
            1,
            x.iter().enumerate().map(|(i, &v)| (i as Index, 0, v)),
        )
    }

    /// Number of canonical (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_merged_in_order_and_zeros_dropped() {
        let m = CanonMatrix::from_triples(
            2,
            2,
            vec![(1, 1, 2.0), (0, 0, 1.0), (1, 1, 3.0), (0, 1, 5.0), (0, 1, -5.0)],
        );
        // (0,1) cancels to exactly zero and is dropped; (1,1) sums to 5.
        assert_eq!(m.entries, vec![(0, 0, 1.0), (1, 1, 5.0)]);
    }

    #[test]
    fn csr_csc_coo_dense_of_same_matrix_canonicalize_equal() {
        let a = outerspace_gen::uniform::matrix(16, 12, 40, 3);
        let mut coo = Coo::new(16, 12);
        for (r, c, v) in a.iter() {
            coo.push(r, c, v);
        }
        let canon = CanonMatrix::from_csr(&a);
        assert_eq!(canon, CanonMatrix::from_csc(&a.to_csc()));
        assert_eq!(canon, CanonMatrix::from_coo(&coo));
        assert_eq!(canon, CanonMatrix::from_dense(&a.to_dense()));
    }

    #[test]
    fn vectors_canonicalize_as_single_column() {
        let x = SparseVector { len: 4, indices: vec![1, 3], values: vec![2.0, 0.0] };
        let canon = CanonMatrix::from_sparse_vector(&x);
        assert_eq!(canon.entries, vec![(1, 0, 2.0)]); // explicit zero dropped
        assert_eq!(canon, CanonMatrix::from_dense_vector(&x.to_dense()));
    }
}
