//! `oracle` — differential-testing front end.
//!
//! ```text
//! oracle [--seeds N] [--impl-subset a,b,c] [--inject-fault]
//!        [--repro-dir DIR] [--replay DIR] [<shared harness flags>]
//! ```
//!
//! Shared flags (`--scale`, `--seed`, `--out`, `--resume`,
//! `--max-case-secs`) are parsed by the bench crate's [`HarnessOpts`], so
//! the oracle scales and checkpoints exactly like the figure harnesses.
//!
//! Exit status: `0` — every implementation agreed on every case (or the
//! replayed repro no longer mismatches); `1` — mismatches found (repros
//! written) or the replayed mismatch still reproduces; `2` — usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use outerspace_bench::{HarnessDefaults, HarnessOpts, USAGE};
use outerspace_oracle::{driver, impls, OracleConfig, Repro, Tolerance};

const ORACLE_USAGE: &str = "usage: oracle [--seeds N] [--impl-subset a,b,c] \
     [--inject-fault] [--repro-dir DIR] [--replay DIR] [--scale N] [--seed N] \
     [--out DIR] [--resume] [--max-case-secs S]";

fn usage_exit(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{ORACLE_USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    // Pull the oracle-specific flags out first; everything else goes through
    // the shared harness parser (which rejects unknown arguments).
    let mut cfg = OracleConfig::default();
    let mut replay: Option<PathBuf> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let Some(v) = args.next() else {
                    return usage_exit("--seeds needs a positive integer");
                };
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => cfg.seeds = n,
                    _ => return usage_exit(&format!("--seeds: '{v}' is not a positive integer")),
                }
            }
            "--impl-subset" => {
                let Some(v) = args.next() else {
                    return usage_exit("--impl-subset needs a comma-separated impl list");
                };
                cfg.impl_subset = Some(v);
            }
            "--inject-fault" => cfg.inject_fault = true,
            "--repro-dir" => {
                let Some(v) = args.next() else {
                    return usage_exit("--repro-dir needs a directory");
                };
                cfg.repro_dir = PathBuf::from(v);
            }
            "--replay" => {
                let Some(v) = args.next() else {
                    return usage_exit("--replay needs a repro directory");
                };
                replay = Some(PathBuf::from(v));
            }
            other => rest.push(other.to_string()),
        }
    }
    let defaults = HarnessDefaults { scale: 4, max_case_secs: 120.0 };
    let opts = match HarnessOpts::parse(rest, defaults) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{ORACLE_USAGE}");
            eprintln!("(shared flags: {USAGE})");
            return ExitCode::from(2);
        }
    };
    // Validate the subset up front so a typo is a usage error, not a panic
    // mid-sweep.
    if let Err(e) = impls::filter_impls(impls::spgemm_impls(), cfg.impl_subset.as_deref()) {
        return usage_exit(&e);
    }

    if let Some(path) = replay {
        return run_replay(&path, &cfg.tol);
    }

    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("error: cannot create {}: {e}", opts.out_dir.display());
        return ExitCode::FAILURE;
    }
    let (summary, mismatches) = driver::run(&opts, &cfg);
    println!(
        "oracle: {} case(s), {} ok, {} mismatch(es), {} panicked, {} timeout",
        summary.total, summary.ok, mismatches, summary.panicked, summary.timeout
    );
    if mismatches > 0 {
        println!("repros written under {}", cfg.repro_dir.display());
    }
    if mismatches > 0 || summary.failures() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--replay <dir>`: reload a stored repro and re-run only the recorded
/// implementation against the reference.
fn run_replay(path: &Path, tol: &Tolerance) -> ExitCode {
    let repro = match Repro::load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {} ({}x{} * {}x{}, impl {}, from case {})",
        path.display(),
        repro.a.nrows(),
        repro.a.ncols(),
        repro.b.nrows(),
        repro.b.ncols(),
        repro.impl_name,
        repro.case,
    );
    match repro.replay(tol) {
        Ok(()) => {
            println!("replay: results agree (mismatch no longer reproduces)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("replay: mismatch reproduces: {e}");
            ExitCode::FAILURE
        }
    }
}
