//! Replayable repro artifacts for oracle failures.
//!
//! A failing (already shrunk) case is persisted as a directory under
//! `oracle_repros/`:
//!
//! ```text
//! oracle_repros/<family>__<impl>__seed<seed>/
//!   a.mtx           left operand (Matrix Market, round-trip formatting)
//!   b.mtx           right operand (for SpMV: the vector as an n × 1 matrix)
//!   manifest.json   kind, implementation, seed/scale provenance, the
//!                   observed mismatch, and shrink statistics
//! ```
//!
//! `oracle --replay <dir>` reloads the pair and re-runs *only* the recorded
//! implementation against the reference: exit 0 when the results now agree
//! (bug fixed), exit 1 with the diff when the mismatch still reproduces.
//! Values are written with `{:e}` formatting, which round-trips `f64`
//! exactly, so a replay is bit-identical to the failing run.

use std::path::{Path, PathBuf};

use outerspace_json::{dump, Json};
use outerspace_sparse::{io, Csr, SparseVector};

use crate::canon::CanonMatrix;
use crate::compare::{compare, Tolerance};
use crate::impls::{self, spgemm_reference, spmv_reference};
use crate::shrink::ShrinkStats;

/// Which operation a repro captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReproKind {
    /// `C = A × B`.
    Spgemm,
    /// `y = A × x` (`b.mtx` stores `x` as an `n × 1` matrix).
    Spmv,
}

impl ReproKind {
    fn as_str(self) -> &'static str {
        match self {
            ReproKind::Spgemm => "spgemm",
            ReproKind::Spmv => "spmv",
        }
    }

    fn from_str(s: &str) -> Option<ReproKind> {
        match s {
            "spgemm" => Some(ReproKind::Spgemm),
            "spmv" => Some(ReproKind::Spmv),
            _ => None,
        }
    }
}

/// A minimal failing input plus the provenance needed to replay it.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Operation kind.
    pub kind: ReproKind,
    /// Registry name of the disagreeing implementation.
    pub impl_name: String,
    /// Oracle case name (`family@seed`) the failure came from.
    pub case: String,
    /// Base RNG seed of the originating run.
    pub seed: u64,
    /// `--scale` of the originating run.
    pub scale: u32,
    /// The mismatch as observed on the *shrunk* input.
    pub error: String,
    /// Shrink statistics (evaluations / adopted steps).
    pub shrink: ShrinkStats,
    /// Left operand.
    pub a: Csr,
    /// Right operand (SpMV: the vector as one column).
    pub b: Csr,
}

/// Extracts an SpMV vector from its one-column matrix encoding.
pub fn vector_from_column(b: &Csr) -> Result<SparseVector, String> {
    if b.ncols() != 1 {
        return Err(format!("spmv repro expects a 1-column b.mtx, got {} columns", b.ncols()));
    }
    let mut indices = Vec::with_capacity(b.nnz());
    let mut values = Vec::with_capacity(b.nnz());
    for (r, _, v) in b.iter() {
        indices.push(r);
        values.push(v);
    }
    Ok(SparseVector { len: b.nrows(), indices, values })
}

impl Repro {
    /// Directory name: stable, filesystem-safe, unique per
    /// `(case, implementation)`.
    pub fn dir_name(&self) -> String {
        let safe: String = self
            .case
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
            .collect();
        format!("{safe}__{}", self.impl_name)
    }

    /// Writes `a.mtx`, `b.mtx` and `manifest.json` under
    /// `<root>/<dir_name>/`, returning the repro directory.
    ///
    /// # Errors
    ///
    /// Returns a description of the first I/O failure.
    pub fn write(&self, root: &Path) -> Result<PathBuf, String> {
        let dir = root.join(self.dir_name());
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let write_mtx = |name: &str, m: &Csr| -> Result<(), String> {
            let path = dir.join(name);
            let file = std::fs::File::create(&path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            io::write_csr(std::io::BufWriter::new(file), m)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))
        };
        write_mtx("a.mtx", &self.a)?;
        write_mtx("b.mtx", &self.b)?;
        let manifest = Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("impl".into(), Json::Str(self.impl_name.clone())),
            ("case".into(), Json::Str(self.case.clone())),
            ("seed".into(), Json::UInt(self.seed)),
            ("scale".into(), Json::UInt(self.scale as u64)),
            ("error".into(), Json::Str(self.error.clone())),
            ("shrink_evals".into(), Json::UInt(self.shrink.evals as u64)),
            ("shrink_steps".into(), Json::UInt(self.shrink.steps as u64)),
            ("a".into(), Json::Str("a.mtx".into())),
            ("b".into(), Json::Str("b.mtx".into())),
            (
                "replay".into(),
                Json::Str(format!("oracle --replay {}", dir.display())),
            ),
        ]);
        let mpath = dir.join("manifest.json");
        dump::write_json_atomic(&mpath, &manifest)
            .map_err(|e| format!("cannot write {}: {e}", mpath.display()))?;
        Ok(dir)
    }

    /// Loads a repro from its directory (or a direct `manifest.json` path).
    ///
    /// # Errors
    ///
    /// Returns a description of the missing/malformed piece.
    pub fn load(path: &Path) -> Result<Repro, String> {
        let dir = if path.is_dir() {
            path.to_path_buf()
        } else {
            path.parent().map(Path::to_path_buf).unwrap_or_default()
        };
        let mpath = dir.join("manifest.json");
        let text = std::fs::read_to_string(&mpath)
            .map_err(|e| format!("cannot read {}: {e}", mpath.display()))?;
        let j = outerspace_json::parse(&text)
            .map_err(|e| format!("{}: {e}", mpath.display()))?;
        let field = |k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{}: missing string field '{k}'", mpath.display()))
        };
        let kind = field("kind")?;
        let kind = ReproKind::from_str(&kind)
            .ok_or_else(|| format!("{}: unknown kind '{kind}'", mpath.display()))?;
        let read_mtx = |k: &str| -> Result<Csr, String> {
            let p = dir.join(field(k)?);
            io::read_csr(&p).map_err(|e| format!("cannot read {}: {e}", p.display()))
        };
        Ok(Repro {
            kind,
            impl_name: field("impl")?,
            case: field("case")?,
            seed: j.get("seed").and_then(Json::as_u64).unwrap_or(0),
            scale: j.get("scale").and_then(Json::as_u64).unwrap_or(1) as u32,
            error: field("error").unwrap_or_default(),
            shrink: ShrinkStats {
                evals: j.get("shrink_evals").and_then(Json::as_u64).unwrap_or(0) as usize,
                steps: j.get("shrink_steps").and_then(Json::as_u64).unwrap_or(0) as usize,
            },
            a: read_mtx("a")?,
            b: read_mtx("b")?,
        })
    }

    /// Re-runs the recorded implementation against the reference on the
    /// stored operands.
    ///
    /// # Errors
    ///
    /// `Err(description)` when the mismatch still reproduces (or the
    /// implementation name is unknown); `Ok(())` when reference and
    /// implementation now agree.
    pub fn replay(&self, tol: &Tolerance) -> Result<(), String> {
        match self.kind {
            ReproKind::Spgemm => {
                // The injected-fault shim is always resolvable on replay so
                // its CI repro reproduces without extra flags.
                let registry: Vec<_> = impls::spgemm_impls()
                    .into_iter()
                    .chain(std::iter::once(impls::injected_fault_impl()))
                    .collect();
                let imp = registry
                    .iter()
                    .find(|i| i.name == self.impl_name)
                    .ok_or_else(|| format!("unknown spgemm impl '{}'", self.impl_name))?;
                diff_results(
                    &self.impl_name,
                    spgemm_reference(&self.a, &self.b).map(|c| CanonMatrix::from_csr(&c)),
                    (imp.run)(&self.a, &self.b).map(|c| CanonMatrix::from_csr(&c)),
                    tol,
                )
            }
            ReproKind::Spmv => {
                let x = vector_from_column(&self.b)?;
                let registry = impls::spmv_impls();
                let imp = registry
                    .iter()
                    .find(|i| i.name == self.impl_name)
                    .ok_or_else(|| format!("unknown spmv impl '{}'", self.impl_name))?;
                diff_results(
                    &self.impl_name,
                    spmv_reference(&self.a, &x).map(|y| CanonMatrix::from_sparse_vector(&y)),
                    (imp.run)(&self.a, &x).map(|y| CanonMatrix::from_sparse_vector(&y)),
                    tol,
                )
            }
        }
    }
}

/// Differences a canonicalized implementation result against the reference,
/// treating rejection agreement as success and rejection *disagreement* as a
/// mismatch. Shared by the replay path and the oracle driver.
pub fn diff_results(
    impl_name: &str,
    reference: Result<CanonMatrix, String>,
    candidate: Result<CanonMatrix, String>,
    tol: &Tolerance,
) -> Result<(), String> {
    match (reference, candidate) {
        (Ok(r), Ok(c)) => compare(&r, &c, tol)
            .map_err(|e| format!("{impl_name} disagrees with reference: {e}")),
        (Err(_), Err(_)) => Ok(()), // both reject: agreement
        (Err(re), Ok(_)) => Err(format!(
            "{impl_name} accepted operands the reference rejects ({re})"
        )),
        (Ok(_), Err(ce)) => Err(format!(
            "{impl_name} rejected operands the reference accepts ({ce})"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("oracle_repro_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_round_trip_preserves_operands_exactly() {
        let root = temp_root("roundtrip");
        let repro = Repro {
            kind: ReproKind::Spgemm,
            impl_name: "injected_fault".into(),
            case: "uniform_square@7".into(),
            seed: 7,
            scale: 48,
            error: "1 disagreeing entry".into(),
            shrink: ShrinkStats { evals: 12, steps: 3 },
            a: uniform::matrix(5, 4, 9, 1),
            b: uniform::matrix(4, 6, 9, 2),
        };
        let dir = repro.write(&root).unwrap();
        let back = Repro::load(&dir).unwrap();
        assert_eq!(back.kind, ReproKind::Spgemm);
        assert_eq!(back.impl_name, "injected_fault");
        assert_eq!((back.seed, back.scale), (7, 48));
        assert_eq!(back.shrink, repro.shrink);
        // `{:e}` formatting round-trips f64 exactly — operands identical.
        assert_eq!(back.a, repro.a);
        assert_eq!(back.b, repro.b);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn replay_reproduces_injected_fault_and_passes_for_real_impls() {
        let a = uniform::matrix(6, 6, 12, 3);
        let base = Repro {
            kind: ReproKind::Spgemm,
            impl_name: "injected_fault".into(),
            case: "t@3".into(),
            seed: 3,
            scale: 48,
            error: String::new(),
            shrink: ShrinkStats { evals: 0, steps: 0 },
            a: a.clone(),
            b: a.clone(),
        };
        let tol = Tolerance::default();
        assert!(base.replay(&tol).is_err(), "fault shim must still mismatch");
        let fixed = Repro { impl_name: "outer_streaming".into(), ..base };
        assert!(fixed.replay(&tol).is_ok(), "real impl agrees with reference");
    }

    #[test]
    fn spmv_vector_encoding_round_trips() {
        let x = SparseVector { len: 7, indices: vec![1, 4], values: vec![2.0, -3.5] };
        let mut coo = outerspace_sparse::Coo::new(7, 1);
        for (&i, &v) in x.indices.iter().zip(&x.values) {
            coo.push(i, 0, v);
        }
        let back = vector_from_column(&coo.to_csr()).unwrap();
        assert_eq!(back.len, 7);
        assert_eq!(back.indices, x.indices);
        assert_eq!(back.values, x.values);
    }

    #[test]
    fn load_rejects_missing_manifest() {
        assert!(Repro::load(Path::new("/nonexistent/repro")).is_err());
    }
}
