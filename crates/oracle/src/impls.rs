//! Registry of every SpGEMM and SpMV path the oracle cross-checks.
//!
//! Each entry wraps one public entry point behind a uniform signature so the
//! driver can run arbitrary subsets (`--impl-subset`) and treat rejection
//! uniformly: errors are carried as strings, and the oracle asserts that all
//! implementations agree not just on *results* but on *rejecting* malformed
//! operands (the typed `DimError` guards).
//!
//! The golden model is [`spgemm_reference`] / [`spmv_reference`]
//! (`outerspace_sparse::ops`), itself validated against dense arithmetic in
//! the sparse crate's unit tests. The simulator's functional output is
//! registered as the `sim` implementation, so the timing model's dataflow
//! (multiply + merge phases, §4 of the paper) is differenced against the
//! same oracle as the software kernels.

use outerspace_baselines as baselines;
use outerspace_outer as outer;
use outerspace_sim::{OuterSpaceConfig, Simulator};
use outerspace_sparse::{ops, Csr, SparseVector};

/// Worker count used by the `*_par` registry entries.
const PAR_THREADS: usize = 3;

/// One SpGEMM implementation under test: `C = A × B`, CR results; rejection
/// is reported as `Err(message)`.
#[derive(Debug, Clone, Copy)]
pub struct SpgemmImpl {
    /// Registry name (stable; used by `--impl-subset` and repro manifests).
    pub name: &'static str,
    /// The wrapped entry point.
    pub run: fn(&Csr, &Csr) -> Result<Csr, String>,
}

/// One SpMV implementation under test: `y = A × x` with `A` in CR and a
/// sparse `x`; results normalize to [`SparseVector`].
#[derive(Debug, Clone, Copy)]
pub struct SpmvImpl {
    /// Registry name.
    pub name: &'static str,
    /// The wrapped entry point.
    pub run: fn(&Csr, &SparseVector) -> Result<SparseVector, String>,
}

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// The golden-model SpGEMM (Gustavson with a dense accumulator).
pub fn spgemm_reference(a: &Csr, b: &Csr) -> Result<Csr, String> {
    ops::spgemm_reference(a, b).map_err(err)
}

/// The golden-model SpMV (row-wise against the densified vector).
pub fn spmv_reference(a: &Csr, x: &SparseVector) -> Result<SparseVector, String> {
    let y = ops::spmv_reference(a, &x.to_dense()).map_err(err)?;
    Ok(SparseVector::from_dense(&y))
}

/// Every SpGEMM path under test, in registry order.
pub fn spgemm_impls() -> Vec<SpgemmImpl> {
    vec![
        SpgemmImpl {
            name: "outer_streaming",
            run: |a, b| outer::spgemm(a, b).map_err(err),
        },
        SpgemmImpl {
            name: "outer_sort",
            run: |a, b| {
                outer::spgemm_with_stats(a, b, outer::MergeKind::SortBased)
                    .map(|(c, _)| c)
                    .map_err(err)
            },
        },
        SpgemmImpl {
            name: "outer_par",
            run: |a, b| {
                outer::spgemm_parallel(a, b, PAR_THREADS).map(|(c, _)| c).map_err(err)
            },
        },
        SpgemmImpl {
            name: "outer_cc",
            run: |a, b| outer::spgemm_cc(a, b).map(|c| c.to_csr()).map_err(err),
        },
        SpgemmImpl {
            name: "outer_arena",
            run: |a, b| {
                // Arena intermediate, streaming merge — isolates the arena
                // multiply from the blocked merge.
                outer::spgemm_arena(a, b, outer::MergeKind::Streaming)
                    .map(|(c, _)| c)
                    .map_err(err)
            },
        },
        SpgemmImpl {
            name: "outer_blocked",
            run: |a, b| outer::spgemm_blocked(a, b).map(|(c, _)| c).map_err(err),
        },
        SpgemmImpl {
            name: "outer_ws_par",
            run: |a, b| {
                outer::spgemm_arena_parallel(a, b, PAR_THREADS)
                    .map(|(c, _)| c)
                    .map_err(err)
            },
        },
        SpgemmImpl {
            name: "mkl_gustavson",
            run: |a, b| baselines::gustavson::spgemm(a, b).map(|(c, _)| c).map_err(err),
        },
        SpgemmImpl {
            name: "mkl_gustavson_par",
            run: |a, b| {
                baselines::gustavson::spgemm_parallel(a, b, PAR_THREADS)
                    .map(|(c, _)| c)
                    .map_err(err)
            },
        },
        SpgemmImpl {
            name: "cusparse_hash",
            run: |a, b| baselines::hash::spgemm(a, b).map(|(c, _)| c).map_err(err),
        },
        SpgemmImpl {
            name: "cusp_esc",
            run: |a, b| baselines::esc::spgemm(a, b).map(|(c, _)| c).map_err(err),
        },
        SpgemmImpl {
            name: "naive_inner",
            run: |a, b| {
                baselines::inner::spgemm(a, &b.to_csc()).map(|(c, _)| c).map_err(err)
            },
        },
        SpgemmImpl {
            name: "sim",
            run: |a, b| {
                let sim = Simulator::new(OuterSpaceConfig::default()).map_err(err)?;
                sim.spgemm(a, b).map(|(c, _)| c).map_err(err)
            },
        },
        SpgemmImpl {
            name: "sim_cc",
            run: |a, b| {
                // The preconverted-operand entry point (chained-multiply
                // steady state): skips the conversion phase, so its engine
                // dataflow is differenced independently of `sim`.
                let sim = Simulator::new(OuterSpaceConfig::default()).map_err(err)?;
                sim.spgemm_cc_operand(&a.to_csc(), b).map(|(c, _)| c).map_err(err)
            },
        },
        SpgemmImpl {
            name: "sparch_cc",
            run: |a, b| {
                // The SpArch-analog functional pipeline: condensed multiply
                // plus the Huffman-scheduled merge tree, at the default
                // tree width. Differenced against the same oracle so the
                // second machine model's dataflow is held to the same bar.
                outer::spgemm_sparch(a, b).map_err(err)
            },
        },
        SpgemmImpl {
            name: "serve",
            run: |a, b| {
                // End-to-end through the request service: admission,
                // classifier routing, watchdogged compute, delivery. Every
                // kernel the router can pick is itself in this registry, so
                // this entry checks the *service plumbing* preserves results
                // and surfaces rejections.
                use std::sync::Arc;
                use outerspace_serve::{Op, OpOutput, Server, ServerConfig, SubmitOpts};
                let server = Server::start(ServerConfig {
                    workers: 1,
                    cache_cap: 0,
                    ..ServerConfig::default()
                });
                let op = Op::Spgemm { a: Arc::new(a.clone()), b: Arc::new(b.clone()) };
                let opts = SubmitOpts {
                    deadline: Some(std::time::Duration::from_secs(600)),
                    force_kernel: None,
                };
                let result = match server.submit_opts(op, opts) {
                    Ok(ticket) => match ticket.wait().result {
                        Ok(out) => match &*out {
                            OpOutput::Matrix(c) => Ok(c.clone()),
                            OpOutput::Vector(_) => Err("serve returned a vector".to_string()),
                        },
                        Err(e) => Err(e.to_string()),
                    },
                    Err(rejected) => Err(rejected.to_string()),
                };
                server.shutdown();
                result
            },
        },
    ]
}

/// Every SpMV path under test, in registry order.
pub fn spmv_impls() -> Vec<SpmvImpl> {
    vec![
        SpmvImpl {
            name: "outer_spmv",
            run: |a, x| outer::spmv(&a.to_csc(), x).map(|(y, _)| y).map_err(err),
        },
        SpmvImpl {
            name: "outer_spmv_dense",
            run: |a, x| {
                outer::spmv_dense(&a.to_csc(), &x.to_dense())
                    .map(|(y, _)| SparseVector::from_dense(&y))
                    .map_err(err)
            },
        },
        SpmvImpl {
            name: "mkl_spmv_densified",
            run: |a, x| {
                baselines::spmv::spmv_dense_vector(a, x)
                    .map(|(y, _)| SparseVector::from_dense(&y))
                    .map_err(err)
            },
        },
        SpmvImpl {
            name: "cusparse_spmv_match",
            run: |a, x| baselines::spmv::spmv_index_match(a, x).map(|(y, _)| y).map_err(err),
        },
        SpmvImpl {
            name: "sim_spmv",
            run: |a, x| {
                let sim = Simulator::new(OuterSpaceConfig::default()).map_err(err)?;
                sim.spmv(&a.to_csc(), x).map(|(y, _)| y).map_err(err)
            },
        },
    ]
}

/// A deliberately broken SpGEMM used by `oracle --inject-fault` and the CI
/// gate: it computes the reference product, then perturbs the first stored
/// value. Any case whose product is non-empty must be flagged, shrunk, and
/// reported — proving the detection pipeline end to end.
pub fn injected_fault_impl() -> SpgemmImpl {
    SpgemmImpl {
        name: "injected_fault",
        run: |a, b| {
            let c = ops::spgemm_reference(a, b).map_err(err)?;
            if c.nnz() == 0 {
                return Ok(c);
            }
            let mut vals = c.values().to_vec();
            vals[0] = vals[0] * 1.5 + 1.0;
            Ok(Csr::from_raw_parts_unchecked(
                c.nrows(),
                c.ncols(),
                c.row_ptr().to_vec(),
                c.col_indices().to_vec(),
                vals,
            ))
        },
    }
}

/// Filters a registry to the comma-separated `--impl-subset` list; `None`
/// keeps everything. Unknown names are reported as an error so typos do not
/// silently shrink coverage.
pub fn filter_impls(
    impls: Vec<SpgemmImpl>,
    subset: Option<&str>,
) -> Result<Vec<SpgemmImpl>, String> {
    let Some(subset) = subset else { return Ok(impls) };
    let wanted: Vec<&str> = subset.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    for w in &wanted {
        if !impls.iter().any(|i| i.name == *w) {
            let names: Vec<&str> = impls.iter().map(|i| i.name).collect();
            return Err(format!("unknown impl '{w}' (known: {})", names.join(", ")));
        }
    }
    Ok(impls.into_iter().filter(|i| wanted.contains(&i.name)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_have_unique_names() {
        let mut names: Vec<&str> = spgemm_impls().iter().map(|i| i.name).collect();
        names.extend(spmv_impls().iter().map(|i| i.name));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn filter_rejects_unknown_names() {
        assert!(filter_impls(spgemm_impls(), Some("outer_streaming,cusp_esc")).unwrap().len() == 2);
        assert!(filter_impls(spgemm_impls(), Some("nope")).is_err());
        assert_eq!(filter_impls(spgemm_impls(), None).unwrap().len(), 16);
    }

    #[test]
    fn serve_router_names_are_a_subset_of_this_registry() {
        // Every kernel the service's classifier can route to must be
        // differentially tested here — the "known-good" guarantee the
        // degradation ladder leans on.
        let spgemm: Vec<&str> = spgemm_impls().iter().map(|i| i.name).collect();
        for name in outerspace_serve::kernels::SPGEMM_KERNELS {
            assert!(spgemm.contains(name), "serve routes to unregistered kernel '{name}'");
        }
        let spmv: Vec<&str> = spmv_impls().iter().map(|i| i.name).collect();
        for name in outerspace_serve::kernels::SPMV_KERNELS {
            assert!(spmv.contains(name), "serve routes to unregistered kernel '{name}'");
        }
    }

    #[test]
    fn injected_fault_diverges_on_nonempty_products() {
        let a = outerspace_gen::uniform::matrix(8, 8, 16, 1);
        let broken = (injected_fault_impl().run)(&a, &a).unwrap();
        let good = spgemm_reference(&a, &a).unwrap();
        assert!(!broken.approx_eq(&good, 1e-9));
    }
}
