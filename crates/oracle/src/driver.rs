//! The oracle run loop: generate → execute everywhere → compare → shrink →
//! persist repros — reported through the bench crate's crash-safe
//! [`Runner`], so `oracle` emits the same `{manifest, cases}` JSON shape as
//! every figure/table harness and inherits checkpointing, `--resume`, panic
//! isolation and the per-case watchdog for free.

use std::path::PathBuf;

use outerspace_bench::runner::{Runner, RunSummary};
use outerspace_bench::HarnessOpts;
use outerspace_json::Json;
use outerspace_sparse::{Csr, SparseVector};

use crate::canon::CanonMatrix;
use crate::cases::{spgemm_case, spmv_case};
use crate::compare::Tolerance;
use crate::impls::{self, spgemm_reference, spmv_reference, SpgemmImpl};
use crate::repro::{diff_results, vector_from_column, Repro, ReproKind};
use crate::shrink::{shrink_pair, DEFAULT_MAX_EVALS};

/// Oracle-specific knobs layered on top of [`HarnessOpts`].
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// How many seeds to draw (each seed yields one SpGEMM and one SpMV
    /// case).
    pub seeds: u64,
    /// Append the deliberately broken implementation to the SpGEMM registry
    /// (`--inject-fault`) — the CI gate for the detection pipeline.
    pub inject_fault: bool,
    /// `--impl-subset a,b,c`: restrict the SpGEMM registry.
    pub impl_subset: Option<String>,
    /// Where shrunk repros are written (`--repro-dir`).
    pub repro_dir: PathBuf,
    /// Comparison tolerance.
    pub tol: Tolerance,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            seeds: 64,
            inject_fault: false,
            impl_subset: None,
            repro_dir: PathBuf::from("oracle_repros"),
            tol: Tolerance::default(),
        }
    }
}

/// Per-case row recorded in the JSON report.
struct CaseRow {
    kind: String,
    family: String,
    case_seed: u64,
    impls: u64,
    mismatches: u64,
    expect_reject: bool,
    a_nnz: u64,
    b_nnz: u64,
    /// Successful kernel results additionally probed by the Freivalds /
    /// residual secondary checker (`verify` crate).
    freivalds_checks: u64,
    /// Secondary-checker rejections. A rejection the canonical compare
    /// *missed* is counted as a mismatch (checker inconsistency).
    freivalds_rejects: u64,
    repros: Vec<String>,
}

outerspace_json::impl_to_json!(CaseRow {
    kind,
    family,
    case_seed,
    impls,
    mismatches,
    expect_reject,
    a_nnz,
    b_nnz,
    freivalds_checks,
    freivalds_rejects,
    repros,
});

/// Asserts the CR↔CC↔COO↔dense conversion cycle preserves a matrix
/// exactly; any divergence is reported like an implementation mismatch.
fn conversion_roundtrip_error(m: &Csr) -> Option<String> {
    let canon = CanonMatrix::from_csr(m);
    let via_csc = m.to_csc().to_csr();
    if CanonMatrix::from_csr(&via_csc) != canon {
        return Some("CR -> CC -> CR round trip diverged".into());
    }
    let mut coo = outerspace_sparse::Coo::new(m.nrows(), m.ncols());
    for (r, c, v) in m.iter() {
        coo.push(r, c, v);
    }
    if CanonMatrix::from_coo(&coo) != canon {
        return Some("CR -> COO round trip diverged".into());
    }
    if CanonMatrix::from_dense(&m.to_dense()) != canon {
        return Some("CR -> dense round trip diverged".into());
    }
    None
}

/// Runs one SpGEMM case against every registered implementation; on a
/// mismatch, shrinks and persists a repro. Returns the report row.
fn run_spgemm_case(
    registry: &[SpgemmImpl],
    name: &str,
    case: crate::cases::SpgemmCase,
    cfg: &OracleConfig,
    scale: u32,
) -> CaseRow {
    let mut row = CaseRow {
        kind: "spgemm".into(),
        family: case.family.into(),
        case_seed: case.seed,
        impls: registry.len() as u64,
        mismatches: 0,
        expect_reject: case.expect_reject,
        a_nnz: case.a.nnz() as u64,
        b_nnz: case.b.nnz() as u64,
        freivalds_checks: 0,
        freivalds_rejects: 0,
        repros: Vec::new(),
    };
    let mut failures: Vec<(String, String)> = Vec::new();
    // The operands also exercise the conversion cycle every kernel relies on.
    for (label, m) in [("A", &case.a), ("B", &case.b)] {
        if let Some(e) = conversion_roundtrip_error(m) {
            failures.push(("convert".into(), format!("operand {label}: {e}")));
        }
    }
    let reference = spgemm_reference(&case.a, &case.b).map(|c| CanonMatrix::from_csr(&c));
    if case.expect_reject && reference.is_ok() {
        failures.push(("reference".into(), "reference accepted malformed operands".into()));
    }
    // The Freivalds probe rides along as a cheap secondary checker: it must
    // agree with the canonical compare on every successful result.
    let vcfg = outerspace_verify::VerifyConfig { seed: case.seed, ..Default::default() };
    for imp in registry {
        let raw = (imp.run)(&case.a, &case.b);
        let probe_reject = match &raw {
            Ok(c) => {
                row.freivalds_checks += 1;
                outerspace_verify::freivalds_spgemm(&case.a, &case.b, c, &vcfg).err()
            }
            Err(_) => None,
        };
        if probe_reject.is_some() {
            row.freivalds_rejects += 1;
        }
        let candidate = raw.map(|c| CanonMatrix::from_csr(&c));
        if let Err(e) = diff_results(imp.name, reference.clone(), candidate, &cfg.tol) {
            let run = imp.run;
            let tol = cfg.tol;
            let still_fails = move |sa: &Csr, sb: &Csr| {
                diff_results(
                    imp.name,
                    spgemm_reference(sa, sb).map(|c| CanonMatrix::from_csr(&c)),
                    run(sa, sb).map(|c| CanonMatrix::from_csr(&c)),
                    &tol,
                )
                .is_err()
            };
            let (sa, sb, stats) =
                shrink_pair(&case.a, &case.b, false, DEFAULT_MAX_EVALS, &still_fails);
            let shrunk_error = diff_results(
                imp.name,
                spgemm_reference(&sa, &sb).map(|c| CanonMatrix::from_csr(&c)),
                run(&sa, &sb).map(|c| CanonMatrix::from_csr(&c)),
                &cfg.tol,
            )
            .err()
            .unwrap_or(e);
            record_repro(
                &mut row,
                &mut failures,
                Repro {
                    kind: ReproKind::Spgemm,
                    impl_name: imp.name.into(),
                    case: name.into(),
                    seed: case.seed,
                    scale,
                    error: shrunk_error,
                    shrink: stats,
                    a: sa,
                    b: sb,
                },
                cfg,
            );
        } else if let Some(p) = probe_reject {
            // The canonical compare accepted what the probe rejected — a
            // checker inconsistency that must fail the run loudly.
            failures.push((
                imp.name.to_string(),
                format!("freivalds probe rejected a canon-equal result: {p}"),
            ));
            row.mismatches += 1;
        }
    }
    report_failures(&mut row, name, failures);
    row
}

/// Runs one SpMV case against every registered vector path.
fn run_spmv_case(
    name: &str,
    case: crate::cases::SpmvCase,
    cfg: &OracleConfig,
    scale: u32,
) -> CaseRow {
    let mut row = CaseRow {
        kind: "spmv".into(),
        family: case.family.into(),
        case_seed: case.seed,
        impls: impls::spmv_impls().len() as u64,
        mismatches: 0,
        expect_reject: case.expect_reject,
        a_nnz: case.a.nnz() as u64,
        b_nnz: case.x.nnz() as u64,
        freivalds_checks: 0,
        freivalds_rejects: 0,
        repros: Vec::new(),
    };
    let mut failures: Vec<(String, String)> = Vec::new();
    let reference = spmv_reference(&case.a, &case.x).map(|y| CanonMatrix::from_sparse_vector(&y));
    if case.expect_reject && reference.is_ok() {
        failures.push(("reference".into(), "reference accepted malformed operands".into()));
    }
    // Encode x as an n × 1 matrix so the shared shrinker/repro format apply.
    let mut xcol = outerspace_sparse::Coo::new(case.x.len, 1);
    for (&i, &v) in case.x.indices.iter().zip(&case.x.values) {
        xcol.push(i, 0, v);
    }
    let xcol = xcol.to_csr();
    let vcfg = outerspace_verify::VerifyConfig { seed: case.seed, ..Default::default() };
    for imp in impls::spmv_impls() {
        let raw = (imp.run)(&case.a, &case.x);
        let probe_reject = match &raw {
            Ok(y) => {
                row.freivalds_checks += 1;
                outerspace_verify::spmv_residual(&case.a, &case.x, y, &vcfg).err()
            }
            Err(_) => None,
        };
        if probe_reject.is_some() {
            row.freivalds_rejects += 1;
        }
        let candidate = raw.map(|y| CanonMatrix::from_sparse_vector(&y));
        if let Err(e) = diff_results(imp.name, reference.clone(), candidate, &cfg.tol) {
            let run = imp.run;
            let tol = cfg.tol;
            let diff_on = move |sa: &Csr, sx: &Csr| -> Result<(), String> {
                let x: SparseVector = vector_from_column(sx)?;
                diff_results(
                    imp.name,
                    spmv_reference(sa, &x).map(|y| CanonMatrix::from_sparse_vector(&y)),
                    run(sa, &x).map(|y| CanonMatrix::from_sparse_vector(&y)),
                    &tol,
                )
            };
            let still_fails = move |sa: &Csr, sx: &Csr| diff_on(sa, sx).is_err();
            let (sa, sx, stats) =
                shrink_pair(&case.a, &xcol, true, DEFAULT_MAX_EVALS, &still_fails);
            let shrunk_error = diff_on(&sa, &sx).err().unwrap_or(e);
            record_repro(
                &mut row,
                &mut failures,
                Repro {
                    kind: ReproKind::Spmv,
                    impl_name: imp.name.into(),
                    case: name.into(),
                    seed: case.seed,
                    scale,
                    error: shrunk_error,
                    shrink: stats,
                    a: sa,
                    b: sx,
                },
                cfg,
            );
        } else if let Some(p) = probe_reject {
            failures.push((
                imp.name.to_string(),
                format!("residual probe rejected a canon-equal result: {p}"),
            ));
            row.mismatches += 1;
        }
    }
    report_failures(&mut row, name, failures);
    row
}

/// Persists a repro for a confirmed mismatch and accounts for it in the row.
fn record_repro(
    row: &mut CaseRow,
    failures: &mut Vec<(String, String)>,
    repro: Repro,
    cfg: &OracleConfig,
) {
    let impl_name = repro.impl_name.clone();
    let detail = format!(
        "{} (shrunk to {}x{} * {}x{}, {} + {} nnz in {} evals)",
        repro.error,
        repro.a.nrows(),
        repro.a.ncols(),
        repro.b.nrows(),
        repro.b.ncols(),
        repro.a.nnz(),
        repro.b.nnz(),
        repro.shrink.evals,
    );
    match repro.write(&cfg.repro_dir) {
        Ok(dir) => row.repros.push(dir.display().to_string()),
        Err(e) => failures.push((impl_name.clone(), format!("repro write failed: {e}"))),
    }
    failures.push((impl_name, detail));
    row.mismatches += 1;
}

/// Prints this case's failures to stderr (the JSON row carries them too).
fn report_failures(row: &mut CaseRow, name: &str, failures: Vec<(String, String)>) {
    for (who, what) in &failures {
        eprintln!("MISMATCH {name} [{who}]: {what}");
    }
    // Conversion/reference failures are not per-impl mismatches but must
    // still fail the run.
    let extra = failures
        .iter()
        .filter(|(who, _)| who == "convert" || who == "reference")
        .count() as u64;
    row.mismatches += extra;
}

/// Executes the full oracle sweep. Returns the run summary and the total
/// mismatch count (0 means every implementation agreed everywhere).
pub fn run(opts: &HarnessOpts, cfg: &OracleConfig) -> (RunSummary, u64) {
    let registry = match impls::filter_impls(impls::spgemm_impls(), cfg.impl_subset.as_deref()) {
        Ok(mut r) => {
            if cfg.inject_fault {
                r.push(impls::injected_fault_impl());
            }
            r
        }
        Err(e) => {
            // Unknown names were already rejected by the bin's flag parsing;
            // reaching this is a programming error worth failing loudly.
            panic!("impl subset: {e}");
        }
    };
    let mut runner = Runner::new("oracle", opts);
    eprintln!(
        "# oracle: {} seed(s), scale {}, {} spgemm impl(s), {} spmv impl(s)",
        cfg.seeds,
        opts.scale,
        registry.len(),
        impls::spmv_impls().len()
    );
    for i in 0..cfg.seeds {
        let gcase = spgemm_case(opts.seed, i, opts.scale);
        let gname = format!("spgemm:{}", gcase.name);
        let (reg, c, scale) = (registry.clone(), cfg.clone(), opts.scale);
        runner.run_case(&gname, {
            let gname = gname.clone();
            move || -> Result<CaseRow, String> {
                Ok(run_spgemm_case(&reg, &gname, gcase, &c, scale))
            }
        });
        let vcase = spmv_case(opts.seed, i, opts.scale);
        let vname = format!("spmv:{}", vcase.name);
        let (c, scale) = (cfg.clone(), opts.scale);
        runner.run_case(&vname, {
            let vname = vname.clone();
            move || -> Result<CaseRow, String> { Ok(run_spmv_case(&vname, vcase, &c, scale)) }
        });
    }
    let mismatches: u64 = runner
        .records()
        .iter()
        .filter_map(|r| r.value.as_ref())
        .filter_map(|v| v.get("mismatches").and_then(Json::as_u64))
        .sum();
    let summary = runner.finalize();
    (summary, mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(out: &std::path::Path, seeds_tag: &str) -> HarnessOpts {
        let _ = seeds_tag;
        HarnessOpts {
            scale: 96, // 8-dim workloads: fast enough for unit tests
            seed: 42,
            out_dir: out.to_path_buf(),
            full: false,
            table4: false,
            resume: false,
            max_case_secs: 0.0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("oracle_driver_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_run_finds_no_mismatches() {
        let dir = temp_dir("clean");
        let cfg = OracleConfig {
            seeds: crate::cases::SPGEMM_FAMILIES, // one full family rotation
            repro_dir: dir.join("repros"),
            ..Default::default()
        };
        let (summary, mismatches) = run(&opts(&dir, "clean"), &cfg);
        assert_eq!(mismatches, 0, "all implementations must agree");
        assert_eq!(summary.failures(), 0);
        assert_eq!(summary.ok as u64, 2 * cfg.seeds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fault_is_detected_shrunk_and_replayable() {
        let dir = temp_dir("fault");
        let cfg = OracleConfig {
            seeds: 1, // family 0: uniform_square — non-empty product
            inject_fault: true,
            impl_subset: Some("outer_streaming".into()), // keep the run tiny
            repro_dir: dir.join("repros"),
            ..Default::default()
        };
        let (_, mismatches) = run(&opts(&dir, "fault"), &cfg);
        assert!(mismatches > 0, "the broken impl must be flagged");
        // Exactly one repro directory, shrunk to the acceptance bound.
        let repros: Vec<_> = std::fs::read_dir(dir.join("repros")).unwrap().collect();
        assert_eq!(repros.len(), 1);
        let rdir = repros[0].as_ref().unwrap().path();
        let repro = Repro::load(&rdir).unwrap();
        assert!(repro.a.nrows() <= 8 && repro.a.ncols() <= 8, "{:?}", repro.a);
        assert!(repro.b.nrows() <= 8 && repro.b.ncols() <= 8, "{:?}", repro.b);
        // Deterministic replay: the mismatch reproduces from disk alone.
        let err = repro.replay(&Tolerance::default()).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
