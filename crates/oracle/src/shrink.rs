//! Greedy delta-debugging shrinker for failing operand pairs.
//!
//! Given a pair `(A, B)` on which some implementation disagrees with the
//! reference, the shrinker searches for a smaller pair that still fails,
//! using first-improvement greedy descent over four transformation groups:
//!
//! 1. **Dimension bisection** — keep the low or high half of `A`'s rows,
//!    `B`'s columns, or the shared inner dimension (entries outside the kept
//!    band are dropped, indices remapped).
//! 2. **Entry thinning** — drop the first or second half of either entry
//!    list; once a list is small, drop entries one at a time.
//! 3. **Value simplification** — rewrite values to `±1`, wholesale first and
//!    then entry-by-entry, so the surviving repro has trivially checkable
//!    arithmetic.
//! 4. **Compaction** — delete empty rows/columns and unused inner indices,
//!    remapping both operands consistently.
//!
//! A candidate is adopted only when its cost — lexicographically
//! `(total nnz, dimension sum, non-unit value count)` — strictly decreases
//! and the caller's `still_fails` predicate holds, so the loop terminates;
//! an evaluation budget bounds the worst case. The result is a *local*
//! minimum: every single transformation either stops failing or stops
//! shrinking.

use outerspace_sparse::{Coo, Csr, Index, Value};

/// Triplet-form operand pair the transformations act on.
#[derive(Debug, Clone)]
struct Cand {
    a_shape: (Index, Index),
    b_shape: (Index, Index),
    a: Vec<(Index, Index, Value)>,
    b: Vec<(Index, Index, Value)>,
}

impl Cand {
    fn from_pair(a: &Csr, b: &Csr) -> Cand {
        Cand {
            a_shape: (a.nrows(), a.ncols()),
            b_shape: (b.nrows(), b.ncols()),
            a: a.iter().collect(),
            b: b.iter().collect(),
        }
    }

    fn build(&self) -> (Csr, Csr) {
        let mut ca = Coo::new(self.a_shape.0, self.a_shape.1);
        for &(r, c, v) in &self.a {
            ca.push(r, c, v);
        }
        let mut cb = Coo::new(self.b_shape.0, self.b_shape.1);
        for &(r, c, v) in &self.b {
            cb.push(r, c, v);
        }
        (ca.to_csr(), cb.to_csr())
    }

    /// Lexicographic cost: total entries, then dimension extent, then
    /// entries whose value is not exactly `±1`.
    fn cost(&self) -> (usize, u64, usize) {
        let dims = self.a_shape.0 as u64 + self.a_shape.1 as u64 + self.b_shape.1 as u64;
        let non_unit = self
            .a
            .iter()
            .chain(&self.b)
            .filter(|&&(_, _, v)| v != 1.0 && v != -1.0)
            .count();
        (self.a.len() + self.b.len(), dims, non_unit)
    }
}

/// Which operand a transformation targets.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    A,
    B,
}

/// Keeps `[lo, hi)` of a dimension, remapping kept indices down by `lo`.
/// `axis` selects rows (`0`) or columns (`1`) of the chosen side; the inner
/// dimension is cut by applying this to `A` columns and `B` rows together.
fn keep_band(
    entries: &[(Index, Index, Value)],
    axis: usize,
    lo: Index,
    hi: Index,
) -> Vec<(Index, Index, Value)> {
    entries
        .iter()
        .filter_map(|&(r, c, v)| {
            let k = if axis == 0 { r } else { c };
            if k < lo || k >= hi {
                return None;
            }
            Some(if axis == 0 { (r - lo, c, v) } else { (r, c - lo, v) })
        })
        .collect()
}

/// Generates the candidate list for one descent round, cheapest-first.
fn candidates(cur: &Cand, lock_b_cols: bool) -> Vec<Cand> {
    let mut out = Vec::new();
    let inner = cur.a_shape.1;

    // 1. Dimension bisection.
    if cur.a_shape.0 > 1 {
        let h = cur.a_shape.0 / 2;
        for (lo, hi) in [(0, h), (h, cur.a_shape.0)] {
            let mut c = cur.clone();
            c.a = keep_band(&cur.a, 0, lo, hi);
            c.a_shape.0 = hi - lo;
            out.push(c);
        }
    }
    if cur.b_shape.1 > 1 && !lock_b_cols {
        let h = cur.b_shape.1 / 2;
        for (lo, hi) in [(0, h), (h, cur.b_shape.1)] {
            let mut c = cur.clone();
            c.b = keep_band(&cur.b, 1, lo, hi);
            c.b_shape.1 = hi - lo;
            out.push(c);
        }
    }
    if inner > 1 {
        let h = inner / 2;
        for (lo, hi) in [(0, h), (h, inner)] {
            let mut c = cur.clone();
            c.a = keep_band(&cur.a, 1, lo, hi);
            c.b = keep_band(&cur.b, 0, lo, hi);
            c.a_shape.1 = hi - lo;
            c.b_shape.0 = hi - lo;
            out.push(c);
        }
    }

    // 2. Entry thinning.
    for side in [Side::A, Side::B] {
        let list = if side == Side::A { &cur.a } else { &cur.b };
        if list.len() > 1 {
            let h = list.len() / 2;
            for keep in [&list[..h], &list[h..]] {
                let mut c = cur.clone();
                *(if side == Side::A { &mut c.a } else { &mut c.b }) = keep.to_vec();
                out.push(c);
            }
        }
        if (2..=16).contains(&list.len()) {
            for i in 0..list.len() {
                let mut c = cur.clone();
                let target = if side == Side::A { &mut c.a } else { &mut c.b };
                target.remove(i);
                out.push(c);
            }
        }
    }

    // 3. Value simplification (wholesale, then per-entry on small inputs).
    let unit = |v: Value| if v < 0.0 { -1.0 } else { 1.0 };
    if cur.a.iter().chain(&cur.b).any(|&(_, _, v)| v != 1.0 && v != -1.0) {
        let mut c = cur.clone();
        for e in c.a.iter_mut().chain(c.b.iter_mut()) {
            e.2 = unit(e.2);
        }
        out.push(c);
        if cur.a.len() + cur.b.len() <= 16 {
            for side in [Side::A, Side::B] {
                let len = if side == Side::A { cur.a.len() } else { cur.b.len() };
                for i in 0..len {
                    let mut c = cur.clone();
                    let e = if side == Side::A { &mut c.a[i] } else { &mut c.b[i] };
                    if e.2 != 1.0 && e.2 != -1.0 {
                        e.2 = unit(e.2);
                        out.push(c);
                    }
                }
            }
        }
    }

    // 4. Compaction: densely renumber the used rows of A, columns of B, and
    // inner indices (used by either side — both must remap identically).
    {
        let remap = |used: &mut Vec<Index>| -> Option<Vec<Index>> {
            used.sort_unstable();
            used.dedup();
            Some(used.clone())
        };
        let mut rows: Vec<Index> = cur.a.iter().map(|&(r, _, _)| r).collect();
        let mut cols: Vec<Index> = cur.b.iter().map(|&(_, c, _)| c).collect();
        let mut inner_used: Vec<Index> = cur
            .a
            .iter()
            .map(|&(_, c, _)| c)
            .chain(cur.b.iter().map(|&(r, _, _)| r))
            .collect();
        let (rows, cols, inner_used) =
            (remap(&mut rows).unwrap(), remap(&mut cols).unwrap(), remap(&mut inner_used).unwrap());
        let shrinks_rows = !rows.is_empty() && rows.len() < cur.a_shape.0 as usize;
        let shrinks_cols =
            !lock_b_cols && !cols.is_empty() && cols.len() < cur.b_shape.1 as usize;
        let shrinks_inner = !inner_used.is_empty() && inner_used.len() < inner as usize;
        if shrinks_rows || shrinks_cols || shrinks_inner {
            let pos = |list: &[Index], k: Index| list.binary_search(&k).unwrap() as Index;
            let mut c = cur.clone();
            if shrinks_rows {
                for e in &mut c.a {
                    e.0 = pos(&rows, e.0);
                }
                c.a_shape.0 = rows.len() as Index;
            }
            if shrinks_cols {
                for e in &mut c.b {
                    e.1 = pos(&cols, e.1);
                }
                c.b_shape.1 = cols.len() as Index;
            }
            if shrinks_inner {
                for e in &mut c.a {
                    e.1 = pos(&inner_used, e.1);
                }
                for e in &mut c.b {
                    e.0 = pos(&inner_used, e.0);
                }
                c.a_shape.1 = inner_used.len() as Index;
                c.b_shape.0 = inner_used.len() as Index;
            }
            out.push(c);
        }
    }

    out
}

/// How a shrink run went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Adopted (strictly improving) steps.
    pub steps: usize,
}

/// Default evaluation budget — generous for the sub-`1000 × 1000` inputs
/// the case generator produces (each eval is one kernel run on a shrinking
/// input, so later evals are nearly free).
pub const DEFAULT_MAX_EVALS: usize = 4000;

/// Shrinks a failing pair to a locally minimal one.
///
/// `still_fails` must return `true` on `(a, b)` (the caller just observed
/// the failure); if it does not — a flaky predicate — the input is returned
/// unshrunk. Set `lock_b_cols` when `B` stands for an SpMV vector and must
/// stay single-column.
pub fn shrink_pair(
    a: &Csr,
    b: &Csr,
    lock_b_cols: bool,
    max_evals: usize,
    still_fails: &dyn Fn(&Csr, &Csr) -> bool,
) -> (Csr, Csr, ShrinkStats) {
    let mut stats = ShrinkStats { evals: 0, steps: 0 };
    let mut cur = Cand::from_pair(a, b);
    stats.evals += 1;
    if !still_fails(a, b) {
        return (a.clone(), b.clone(), stats);
    }
    'descend: loop {
        let cost = cur.cost();
        for cand in candidates(&cur, lock_b_cols) {
            if cand.cost() >= cost {
                continue;
            }
            if stats.evals >= max_evals {
                break 'descend;
            }
            stats.evals += 1;
            let (ca, cb) = cand.build();
            if still_fails(&ca, &cb) {
                cur = cand;
                stats.steps += 1;
                continue 'descend; // first improvement: restart the round
            }
        }
        break; // full round without improvement: local minimum
    }
    let (sa, sb) = cur.build();
    (sa, sb, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    /// A synthetic "bug": fails whenever A touches inner index 3 with a
    /// value heavier than 0.75 — shrinkable to a single entry.
    fn touches_hot_index(a: &Csr, _b: &Csr) -> bool {
        a.iter().any(|(_, c, v)| c == 3 && v.abs() > 0.75)
    }

    #[test]
    fn shrinks_synthetic_bug_to_single_entry() {
        let mut a = uniform::matrix(64, 64, 256, 9);
        // Plant the trigger deterministically.
        let mut coo = Coo::new(64, 64);
        for (r, c, v) in a.iter() {
            coo.push(r, c, v);
        }
        coo.push(17, 3, 0.9);
        a = coo.to_csr();
        let b = uniform::matrix(64, 64, 256, 10);
        assert!(touches_hot_index(&a, &b));
        let (sa, sb, stats) =
            shrink_pair(&a, &b, false, DEFAULT_MAX_EVALS, &touches_hot_index);
        assert!(touches_hot_index(&sa, &sb), "shrunk input must still fail");
        assert_eq!(sa.nnz(), 1, "one entry suffices to trigger");
        assert!(sa.nrows() <= 8 && sa.ncols() <= 8, "dims compacted: {sa:?}");
        assert!(stats.steps > 0);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let a = uniform::matrix(8, 8, 16, 1);
        let b = uniform::matrix(8, 8, 16, 2);
        let (sa, sb, stats) = shrink_pair(&a, &b, false, 100, &|_, _| false);
        assert_eq!(sa, a);
        assert_eq!(sb, b);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn lock_b_cols_preserves_vector_shape() {
        let a = uniform::matrix(32, 32, 128, 3);
        let x = uniform::matrix(32, 1, 16, 4);
        // "Bug": any non-empty product of non-empty operands.
        let fails = |a: &Csr, b: &Csr| a.nnz() > 0 && b.nnz() > 0;
        let (_, sx, _) = shrink_pair(&a, &x, true, DEFAULT_MAX_EVALS, &fails);
        assert_eq!(sx.ncols(), 1, "vector operand must stay one column");
    }

    #[test]
    fn shrink_respects_eval_budget() {
        let a = uniform::matrix(64, 64, 512, 5);
        let b = uniform::matrix(64, 64, 512, 6);
        let (_, _, stats) = shrink_pair(&a, &b, false, 10, &|a, b| a.nnz() + b.nnz() > 0);
        assert!(stats.evals <= 10);
    }
}
