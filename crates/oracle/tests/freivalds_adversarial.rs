//! Adversarial case families for the Freivalds secondary checker, pinning
//! the false-negative bound empirically.
//!
//! Three corruption shapes, chosen to cover both detection regimes the
//! `verify` crate documents:
//!
//! * **single-entry perturbation** — one product entry scaled by (1 + δ).
//!   The probe difference at that row is `δ·c_ij·x_j` with `|x_j| = 1`, so
//!   detection probability is 1 per round: the checker must catch it for
//!   *every* seed even with a single round.
//! * **sign flip** — the magnitude-dominant entry negated. Same argument:
//!   zero misses allowed.
//! * **duplicate-index aliasing** — `+δ` and `−δ` written into two columns
//!   of the *same* row, the shape an aliased scatter-accumulate bug
//!   produces. The probe misses a round iff `x_{j1} = x_{j2}` (probability
//!   exactly 1/2), making this the worst case that attains the `2^-rounds`
//!   bound — the property this suite pins from both sides.
//!
//! Everything is seed-deterministic, so the observed miss counts are stable
//! across runs; the assertions are not flaky.

use outerspace_gen::{powerlaw, rmat, uniform};
use outerspace_sparse::{ops, Csr};
use outerspace_verify::{false_negative_bound, freivalds_spgemm, VerifyConfig};

/// One (operands, clean product) triple per seed, rotating generator
/// families like the oracle's case tables do.
fn clean_case(seed: u64) -> (Csr, Csr, Csr) {
    let n = 48;
    let nnz = 300;
    let a = match seed % 3 {
        0 => uniform::matrix(n, n, nnz, seed),
        1 => rmat::graph500(n, nnz, seed),
        _ => powerlaw::graph(n, nnz, seed),
    };
    let b = uniform::matrix(n, n, nnz, seed ^ 0x9e37);
    let c = ops::spgemm_reference(&a, &b).expect("clean product");
    (a, b, c)
}

/// Corrupts one stored entry multiplicatively, seed-deterministically.
fn perturb_single_entry(c: &mut Csr, seed: u64) -> bool {
    let nnz = c.nnz();
    if nnz == 0 {
        return false;
    }
    let idx = (seed as usize).wrapping_mul(0x9e37_79b9) % nnz;
    c.values_mut()[idx] *= 1.0 + 3e-2;
    true
}

/// Flips the sign of the magnitude-dominant entry.
fn flip_dominant_sign(c: &mut Csr) -> bool {
    let vals = c.values_mut();
    if vals.is_empty() {
        return false;
    }
    let (idx, _) = vals
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| x.abs().total_cmp(&y.abs()))
        .expect("non-empty");
    vals[idx] = -vals[idx];
    true
}

/// Writes a cancelling `+δ/−δ` pair into two entries of one row — the
/// aliasing shape whose per-round detection probability is exactly 1/2.
fn alias_cancelling_pair(c: &mut Csr, delta: f64) -> bool {
    // Find a row with at least two stored entries.
    let row = (0..c.nrows()).find(|&i| c.row_nnz(i) >= 2);
    let Some(row) = row else { return false };
    let start = c.row_ptr()[row as usize];
    let vals = c.values_mut();
    vals[start] += delta;
    vals[start + 1] -= delta;
    true
}

#[test]
fn single_entry_perturbations_never_survive() {
    let cfg = VerifyConfig { rounds: 1, ..VerifyConfig::default() };
    let mut corrupted = 0;
    for seed in 0..48 {
        let (a, b, mut c) = clean_case(seed);
        if !perturb_single_entry(&mut c, seed) {
            continue;
        }
        corrupted += 1;
        assert!(
            freivalds_spgemm(&a, &b, &c, &cfg).is_err(),
            "seed {seed}: single-entry perturbation survived a probe round"
        );
    }
    assert!(corrupted >= 40, "families must produce non-empty products");
}

#[test]
fn sign_flips_never_survive() {
    let cfg = VerifyConfig { rounds: 1, ..VerifyConfig::default() };
    for seed in 0..48 {
        let (a, b, mut c) = clean_case(seed);
        if !flip_dominant_sign(&mut c) {
            continue;
        }
        assert!(
            freivalds_spgemm(&a, &b, &c, &cfg).is_err(),
            "seed {seed}: sign flip survived a probe round"
        );
    }
}

/// Observed miss rate of the worst-case aliasing family at a given round
/// count, over `trials` deterministic trials.
fn aliasing_misses(rounds: u32, trials: u64) -> u64 {
    let mut misses = 0;
    for seed in 0..trials {
        let (a, b, mut c) = clean_case(seed);
        if !alias_cancelling_pair(&mut c, 0.37) {
            continue;
        }
        let cfg = VerifyConfig { rounds, seed: seed ^ 0xa11a5, ..VerifyConfig::default() };
        if freivalds_spgemm(&a, &b, &c, &cfg).is_ok() {
            misses += 1;
        }
    }
    misses
}

#[test]
fn aliasing_pins_the_false_negative_bound() {
    let trials = 128;

    // At one round the miss probability is exactly 1/2: the observed rate
    // must be consistent with that (pinning the bound from *below* — the
    // bound is attained, not just an upper estimate).
    let one_round = aliasing_misses(1, trials);
    assert!(
        one_round >= trials / 4 && one_round <= 3 * trials / 4,
        "1-round aliasing miss rate {one_round}/{trials} inconsistent with the 1/2 worst case"
    );

    // At the default round count the miss rate must respect the 2^-rounds
    // bound (generous 4x slack over the expectation of ~1 in 128 trials;
    // deterministic seeds keep this stable).
    let bound = false_negative_bound(outerspace_verify::DEFAULT_ROUNDS);
    let default_rounds = aliasing_misses(outerspace_verify::DEFAULT_ROUNDS, trials);
    let allowed = (4.0 * bound * trials as f64).ceil() as u64;
    assert!(
        default_rounds <= allowed,
        "{default_rounds}/{trials} misses exceeds 4x the {bound} bound"
    );

    // And with a deep probe the family is extinguished entirely.
    assert_eq!(aliasing_misses(16, trials), 0);
}
