//! Concurrency regression tests for the work-stealing execution layer.
//!
//! The deques only redistribute *which worker* executes a column stripe or
//! row batch; results are stitched back in item order, so the output must be
//! byte-identical run-to-run for a fixed seed and thread count, and
//! identical across *different* thread counts (including 1, which exercises
//! the no-steal degenerate path). A scheduler leaking execution order into
//! the output would show up here as a flaky or thread-count-dependent diff.

use outerspace_gen::{rmat, uniform};
use outerspace_outer::{
    merge_arena, merge_arena_parallel, multiply_arena, multiply_arena_parallel,
    spgemm_arena_parallel, spgemm_blocked, sum_all_parallel, worksteal, MergeKind,
};
use outerspace_sparse::Csr;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 5];

fn operands(seed: u64) -> (Csr, Csr) {
    let a = rmat::graph500(128, 1024, seed);
    let b = uniform::matrix(128, 128, 640, seed ^ 0x9e37);
    (a, b)
}

#[test]
fn same_seed_and_thread_count_is_byte_identical_across_runs() {
    for seed in [1, 17] {
        let (a, b) = operands(seed);
        for threads in THREAD_COUNTS {
            let (first, _) = spgemm_arena_parallel(&a, &b, threads).unwrap();
            for _ in 0..3 {
                let (again, _) = spgemm_arena_parallel(&a, &b, threads).unwrap();
                assert_eq!(
                    again, first,
                    "seed {seed}, {threads} threads: output changed between runs"
                );
            }
        }
    }
}

#[test]
fn thread_count_does_not_change_the_product() {
    for seed in [2, 23] {
        let (a, b) = operands(seed);
        let (sequential, _) = spgemm_blocked(&a, &b).unwrap();
        for threads in THREAD_COUNTS {
            let (par, _) = spgemm_arena_parallel(&a, &b, threads).unwrap();
            assert_eq!(par, sequential, "seed {seed}: {threads} threads != sequential");
        }
    }
}

#[test]
fn multiply_and_merge_stages_are_individually_thread_invariant() {
    let (a, b) = operands(5);
    let a_cc = a.to_csc();
    let (seq_ap, seq_stats) = multiply_arena(&a_cc, &b).unwrap();
    let (seq_merged, _) = merge_arena(&seq_ap, MergeKind::Blocked);
    for threads in THREAD_COUNTS {
        // The stolen multiply must produce the same arena contents (observed
        // through the merge, which reads chunks in item order) and the same
        // aggregate stats.
        let (par_ap, par_stats) = multiply_arena_parallel(&a_cc, &b, threads).unwrap();
        assert_eq!(
            par_stats.elementary_products, seq_stats.elementary_products,
            "{threads} threads: flop count diverged"
        );
        assert_eq!(
            par_stats.chunks, seq_stats.chunks,
            "{threads} threads: chunk count diverged"
        );
        for kind in [MergeKind::Streaming, MergeKind::SortBased, MergeKind::Blocked] {
            let (merged, _) = merge_arena(&par_ap, kind);
            assert_eq!(merged, seq_merged, "{threads} threads, {kind:?}: merge diverged");
            let (merged_par, _) = merge_arena_parallel(&par_ap, kind, threads);
            assert_eq!(
                merged_par, seq_merged,
                "{threads} threads, {kind:?}: parallel merge diverged"
            );
        }
    }
}

#[test]
fn elementwise_sum_is_thread_invariant() {
    let mats: Vec<Csr> =
        (0..6).map(|i| uniform::matrix(96, 96, 400 + 60 * i, 31 + i as u64)).collect();
    let refs: Vec<&Csr> = mats.iter().collect();
    let (one, _) = sum_all_parallel(&refs, 1).unwrap();
    for threads in &THREAD_COUNTS[1..] {
        let (par, _) = sum_all_parallel(&refs, *threads).unwrap();
        assert_eq!(par, one, "sum_all_parallel({threads}) != single-threaded");
    }
}

#[test]
fn stolen_iteration_covers_every_item_exactly_once() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let n: u32 = 509; // prime, so stripes never divide evenly
    for threads in THREAD_COUNTS {
        for grain in [1, 8, 64] {
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            worksteal::for_each_stolen(n, threads, grain, |_worker, item| {
                hits[item as usize].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "item {i} ran {} times ({threads} threads, grain {grain})",
                    h.load(Ordering::Relaxed)
                );
            }
        }
    }
}

#[test]
fn imbalanced_work_engages_the_stealers_without_changing_coverage() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let n: u32 = 256;
    let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    // All the heavy items sit in the first worker's initial stripe; the other
    // workers drain their own stripes quickly and must steal to finish.
    let steals = worksteal::for_each_stolen(n, 4, 4, |_worker, item| {
        hits[item as usize].fetch_add(1, Ordering::Relaxed);
        if item < n / 4 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    });
    assert!(steals > 0, "skewed load should trigger at least one steal");
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}
