//! Round-trip property tests for the format conversions the outer-product
//! pipeline leans on: CR ↔ CC (both the direct transpose path and the
//! paper's §4.3 identity-multiplication conversion), CR ↔ COO (including
//! duplicate coordinates), and CR ↔ dense. Structural edge cases — empty
//! rows, trailing empty columns, fully empty matrices — are exercised
//! explicitly, because those are exactly the places a prefix-sum or
//! relabelling bug hides.

use outerspace_gen::{banded, powerlaw, rmat, uniform};
use outerspace_outer::csr_to_csc_via_outer;
use outerspace_sparse::{Coo, Csr, Index};

/// Canonical triple list of a CR matrix — the equality the round trips must
/// preserve (`Csr` equality also covers it, but triples give better failure
/// output and cost nothing at these sizes).
fn triples(m: &Csr) -> Vec<(Index, Index, f64)> {
    m.iter().collect()
}

/// The matrices under test: every generator family plus structural edges.
fn workloads() -> Vec<(&'static str, Csr)> {
    let mut out: Vec<(&'static str, Csr)> = vec![
        ("uniform", uniform::matrix(60, 45, 300, 11)),
        ("rmat", rmat::graph500(64, 400, 12)),
        ("banded", banded::circulant(48, 4, 13)),
        ("powerlaw", powerlaw::graph(56, 250, 14)),
        ("empty", Csr::zero(17, 9)),
        ("identity", Csr::identity(23)),
        ("single_row", uniform::matrix(1, 40, 20, 15)),
        ("single_col", uniform::matrix(40, 1, 20, 16)),
    ];
    // Many empty rows *and* a guaranteed trailing block of empty columns:
    // entries confined to the top-left quadrant of a larger shape.
    let mut coo = Coo::new(32, 32);
    for (r, c, v) in uniform::matrix(8, 8, 20, 17).iter() {
        coo.push(r, c, v);
    }
    out.push(("trailing_empty", coo.to_csr()));
    out
}

#[test]
fn csr_to_csc_and_back_is_identity() {
    for (name, m) in workloads() {
        let back = m.to_csc().to_csr();
        assert_eq!(triples(&m), triples(&back), "{name}: CR -> CC -> CR");
        assert_eq!((m.nrows(), m.ncols()), (back.nrows(), back.ncols()), "{name}: shape");
    }
}

#[test]
fn outer_product_conversion_agrees_with_direct_transpose() {
    // §4.3's identity-multiplication conversion must be *exactly* the
    // direct CR -> CC conversion, for every structure class.
    for (name, m) in workloads() {
        let (via_outer, _) = csr_to_csc_via_outer(&m);
        assert_eq!(via_outer, m.to_csc(), "{name}: outer-product conversion");
        assert_eq!(triples(&via_outer.to_csr()), triples(&m), "{name}: round trip");
    }
}

#[test]
fn coo_round_trip_preserves_entries() {
    for (name, m) in workloads() {
        let mut coo = Coo::new(m.nrows(), m.ncols());
        for (r, c, v) in m.iter() {
            coo.push(r, c, v);
        }
        assert_eq!(triples(&coo.to_csr()), triples(&m), "{name}: CR -> COO -> CR");
    }
}

#[test]
fn coo_duplicate_coordinates_sum_deterministically() {
    // Split every entry into three pushes (v = v/2 + v/4 + v/4) in scattered
    // order; the CSR conversion must merge them back to the original values.
    let m = uniform::matrix(24, 24, 120, 18);
    let mut coo = Coo::new(24, 24);
    for (r, c, v) in m.iter() {
        coo.push(r, c, v / 2.0);
    }
    for (r, c, v) in m.iter() {
        coo.push(r, c, v / 4.0);
        coo.push(r, c, v / 4.0);
    }
    let back = coo.to_csr();
    assert_eq!(back.nnz(), m.nnz(), "duplicates must merge, not accumulate");
    for ((r1, c1, v1), (r2, c2, v2)) in triples(&m).into_iter().zip(triples(&back)) {
        assert_eq!((r1, c1), (r2, c2));
        assert!((v1 - v2).abs() <= 1e-12 * v1.abs().max(1.0), "({r1},{c1}): {v1} vs {v2}");
    }
}

#[test]
fn dense_round_trip_preserves_entries() {
    for (name, m) in workloads() {
        let back = m.to_dense().to_csr();
        assert_eq!(triples(&back), triples(&m), "{name}: CR -> dense -> CR");
    }
}

#[test]
fn empty_rows_and_trailing_empty_cols_survive_every_path() {
    let mut coo = Coo::new(10, 12);
    coo.push(0, 0, 1.0);
    coo.push(4, 3, -2.0); // rows 1-3 empty, rows 5-9 empty, cols 4-11 empty
    let m = coo.to_csr();
    assert_eq!(m.row_nnz(1), 0);
    assert_eq!(m.row_nnz(9), 0);

    let via_csc = m.to_csc().to_csr();
    assert_eq!(via_csc, m);
    let (via_outer, _) = csr_to_csc_via_outer(&m);
    assert_eq!(via_outer.to_csr(), m);
    let via_dense = m.to_dense().to_csr();
    assert_eq!(via_dense, m);
    // The shape — including the fully-empty trailing columns — survives.
    assert_eq!((via_csc.nrows(), via_csc.ncols()), (10, 12));
}
