//! Property tests for the merge phase (§4.2/§5.4.2): the streaming
//! multi-way merge and the sort-based ablation must agree with each other
//! and with an independent Gustavson implementation, including on the
//! awkward inputs — duplicate column indices spread across chunks, values
//! that cancel to exactly zero, and the single-chunk fast path where no
//! actual merging happens.

use outerspace_baselines::gustavson;
use outerspace_outer::{merge, merge_parallel, multiply, Chunk, MergeKind, PartialProducts};
use outerspace_sparse::{Csr, Index, Value};

fn chunk(entries: &[(Index, Value)]) -> Chunk {
    Chunk {
        cols: entries.iter().map(|&(c, _)| c).collect(),
        vals: entries.iter().map(|&(_, v)| v).collect(),
    }
}

/// Builds identical partial products twice (merge consumes them).
fn twin_pp<F: Fn(&mut PartialProducts)>(
    nrows: Index,
    ncols: Index,
    fill: F,
) -> (PartialProducts, PartialProducts) {
    let mut a = PartialProducts::new(nrows, ncols);
    let mut b = PartialProducts::new(nrows, ncols);
    fill(&mut a);
    fill(&mut b);
    (a, b)
}

#[test]
fn duplicate_columns_across_many_chunks_accumulate_once() {
    // Column 5 appears in every chunk; both algorithms must sum all four
    // contributions into a single output entry.
    let (pp1, pp2) = twin_pp(1, 16, |pp| {
        pp.push_chunk(0, chunk(&[(2, 1.0), (5, 0.25)]));
        pp.push_chunk(0, chunk(&[(5, 0.25), (9, 2.0)]));
        pp.push_chunk(0, chunk(&[(5, 0.25)]));
        pp.push_chunk(0, chunk(&[(0, 3.0), (5, 0.25), (14, 4.0)]));
    });
    let (c1, s1) = merge(pp1, MergeKind::Streaming);
    let (c2, s2) = merge(pp2, MergeKind::SortBased);
    assert_eq!(c1, c2);
    assert_eq!(c1.row(0).0, &[0, 2, 5, 9, 14]);
    assert_eq!(c1.get(0, 5), 1.0);
    assert_eq!(s1.collisions, 3, "four copies of column 5 = three additions");
    assert_eq!(s1.collisions, s2.collisions);
    assert_eq!(s1.output_entries, s2.output_entries);
}

#[test]
fn zero_sum_cancellation_keeps_an_explicit_zero() {
    // +1 and -1 collide at column 3. The merge *stores* the cancelled
    // entry (value 0.0) rather than re-compacting the row — the hardware
    // streams its output, it cannot retract an allocation. Downstream
    // comparisons treat explicit zeros as absent (see the oracle's
    // canonicalization), but the phase-level contract is "sum, keep".
    let (pp1, pp2) = twin_pp(1, 8, |pp| {
        pp.push_chunk(0, chunk(&[(3, 1.0), (6, 2.0)]));
        pp.push_chunk(0, chunk(&[(3, -1.0)]));
    });
    let (c1, s1) = merge(pp1, MergeKind::Streaming);
    let (c2, _) = merge(pp2, MergeKind::SortBased);
    assert_eq!(c1, c2);
    assert_eq!(c1.row(0).0, &[3, 6], "cancelled column is still present");
    assert_eq!(c1.get(0, 3), 0.0);
    assert_eq!(s1.collisions, 1);
}

#[test]
fn single_chunk_rows_pass_through_unchanged() {
    // One chunk per row: nothing to merge, output must be the chunk verbatim
    // with zero collisions — and both algorithms agree on the stats.
    let entries: Vec<(Index, Value)> = vec![(1, 0.5), (4, -2.0), (7, 3.25)];
    let (pp1, pp2) = twin_pp(2, 8, |pp| {
        pp.push_chunk(0, chunk(&entries));
        // Row 1 left empty: the empty-row path rides along.
    });
    let (c1, s1) = merge(pp1, MergeKind::Streaming);
    let (c2, s2) = merge(pp2, MergeKind::SortBased);
    assert_eq!(c1, c2);
    assert_eq!(c1.row(0).0, &[1, 4, 7]);
    assert_eq!(c1.row(0).1, &[0.5, -2.0, 3.25]);
    assert_eq!(c1.row_nnz(1), 0);
    for s in [s1, s2] {
        assert_eq!(s.collisions, 0);
        assert_eq!(s.output_entries, 3);
    }
}

/// Full pipeline check: multiply + every merge flavour versus an
/// independent Gustavson implementation, over structurally diverse inputs.
#[test]
fn merged_products_match_gustavson_baseline() {
    let workloads: Vec<(Csr, Csr)> = vec![
        {
            let a = outerspace_gen::uniform::matrix(72, 72, 600, 21);
            let b = outerspace_gen::uniform::matrix(72, 72, 600, 22);
            (a, b)
        },
        {
            let g = outerspace_gen::rmat::graph500(64, 500, 23);
            (g.clone(), g)
        },
        {
            // Rectangular: every dimension distinct.
            let a = outerspace_gen::uniform::matrix(40, 25, 300, 24);
            let b = outerspace_gen::uniform::matrix(25, 55, 300, 25);
            (a, b)
        },
    ];
    for (a, b) in workloads {
        let (want, _) = gustavson::spgemm(&a, &b).expect("compatible shapes");
        for kind in [MergeKind::Streaming, MergeKind::SortBased] {
            let (pp, _) = multiply(&a.to_csc(), &b).unwrap();
            let (c, _) = merge(pp, kind);
            assert!(c.approx_eq(&want, 1e-9), "{kind:?} diverges from Gustavson");
        }
        let (pp, _) = multiply(&a.to_csc(), &b).unwrap();
        let (c_par, _) = merge_parallel(pp, MergeKind::Streaming, 3);
        assert!(c_par.approx_eq(&want, 1e-9), "parallel merge diverges");
    }
}

#[test]
fn streaming_and_sort_based_agree_on_adversarial_chunk_layouts() {
    // Chunks with interleaved, overlapping, and disjoint column ranges —
    // the orderings that stress the heap refill logic.
    let (pp1, pp2) = twin_pp(3, 32, |pp| {
        pp.push_chunk(0, chunk(&[(0, 1.0), (10, 1.0), (20, 1.0), (30, 1.0)]));
        pp.push_chunk(0, chunk(&[(5, 1.0), (15, 1.0), (25, 1.0)]));
        pp.push_chunk(0, chunk(&[(0, 1.0), (31, 1.0)]));
        pp.push_chunk(1, chunk(&[(7, -1.0), (8, -1.0), (9, -1.0)]));
        pp.push_chunk(1, chunk(&[(7, 1.0), (8, 1.0), (9, 1.0)]));
        pp.push_chunk(2, chunk(&[(16, 2.0)]));
    });
    let (c1, s1) = merge(pp1, MergeKind::Streaming);
    let (c2, s2) = merge(pp2, MergeKind::SortBased);
    assert_eq!(c1, c2);
    assert_eq!(s1.collisions, s2.collisions);
    assert_eq!(s1.output_entries, s2.output_entries);
    // Row 1 cancelled everywhere but the entries remain, as zeros.
    assert_eq!(c1.row(1).0, &[7, 8, 9]);
    assert!(c1.row(1).1.iter().all(|&v| v == 0.0));
}
