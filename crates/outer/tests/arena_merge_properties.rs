//! Property tests for the arena/blocked fast paths: for every adversarial
//! operand shape, the arena multiply and the cache-blocked merge must
//! produce output triples *identical* to the chunk-list + streaming
//! reference path — not merely approximately equal. Both families
//! accumulate collisions in chunk-index order and reconstruct parallel
//! output in item order, so `==` on the result `Csr` (pointers, columns,
//! and bit-patterns of the values) is the contract under test.
//!
//! An independent Gustavson implementation anchors the whole family to a
//! non-outer-product reference (approximate equality there: different
//! accumulation orders legitimately differ in the last ulps).

use outerspace_baselines::gustavson;
use outerspace_gen::{powerlaw, rmat, uniform};
use outerspace_outer::{
    spgemm, spgemm_arena, spgemm_arena_parallel, spgemm_blocked, MergeKind,
};
use outerspace_sparse::{Coo, Csr, Index};

/// Every fast path against the chunk-list reference on one operand pair.
fn assert_all_paths_identical(a: &Csr, b: &Csr, label: &str) {
    let reference = spgemm(a, b).unwrap_or_else(|e| panic!("{label}: reference failed: {e}"));
    for kind in [MergeKind::Streaming, MergeKind::SortBased, MergeKind::Blocked] {
        let (c, _) = spgemm_arena(a, b, kind).unwrap();
        assert_eq!(c, reference, "{label}: arena/{kind:?} diverged");
    }
    let (c, _) = spgemm_blocked(a, b).unwrap();
    assert_eq!(c, reference, "{label}: blocked diverged");
    for threads in [1, 2, 3, 5] {
        let (c, _) = spgemm_arena_parallel(a, b, threads).unwrap();
        assert_eq!(c, reference, "{label}: arena_parallel({threads}) diverged");
    }
    let (gus, _) = gustavson::spgemm(a, b).unwrap();
    assert!(reference.approx_eq(&gus, 1e-9), "{label}: diverged from Gustavson");
}

#[test]
fn uniform_and_skewed_workloads_are_identical_across_paths() {
    for seed in [1, 7, 42] {
        let n = 96;
        let a = uniform::matrix(n, n, 4 * n as usize, seed);
        let b = uniform::matrix(n, n, 4 * n as usize, seed ^ 0x9e37);
        assert_all_paths_identical(&a, &b, &format!("uniform@{seed}"));

        let g = rmat::graph500(64, 512, seed);
        assert_all_paths_identical(&g, &g, &format!("rmat@{seed}"));

        let p = powerlaw::graph(96, 700, seed);
        assert_all_paths_identical(&p, &p, &format!("powerlaw@{seed}"));
    }
}

#[test]
fn mostly_empty_rows_and_columns() {
    for seed in [3, 11] {
        // nnz ≪ n: most rows and columns empty on both sides, so the arena's
        // prefix sums are dominated by zero-length rows and the merge sees
        // long empty stretches.
        let n: Index = 200;
        let a = uniform::matrix(n, n, (n / 8) as usize, seed);
        let b = uniform::matrix(n, n, (n / 8) as usize, seed ^ 0x9e37);
        assert_all_paths_identical(&a, &b, &format!("sparse@{seed}"));
    }
    // Fully empty operands in every position.
    let zero = Coo::new(64, 64).to_csr();
    let dense = uniform::matrix(64, 64, 256, 5);
    assert_all_paths_identical(&zero, &dense, "zero_left");
    assert_all_paths_identical(&dense, &zero, "zero_right");
    assert_all_paths_identical(&zero, &zero, "zero_both");
}

#[test]
fn dense_column_skew_makes_one_giant_merge_row() {
    for seed in [2, 9] {
        // Every non-zero of A lives in column 0; paired with a dense row 0
        // of B, every result row is one enormous chunk (the worst case for
        // chunk allocation, the best case for the arena).
        let n: Index = 80;
        let mut col = Coo::new(n, n);
        let mut row = Coo::new(n, n);
        for i in 0..n {
            let v = 0.5 + ((seed + i as u64 * 37) % 100) as f64 / 100.0;
            col.push(i, 0, v);
            row.push(0, i, 1.0 / v);
        }
        let a = col.to_csr();
        let b = row.to_csr();
        assert_all_paths_identical(&a, &b, &format!("dense_col_x_dense_row@{seed}"));
        // Dense column against a generic matrix: n chunks land in row 0's
        // product column range while all other source rows stay empty.
        let u = uniform::matrix(n, n, 4 * n as usize, seed);
        assert_all_paths_identical(&a, &u, &format!("dense_col_x_uniform@{seed}"));
    }
}

#[test]
fn duplicate_accumulation_collides_in_every_chunk() {
    // A's single dense column times B's duplicate-heavy rows: every output
    // entry is the sum of many elementary products, so any deviation in
    // accumulation *order* between the merge kinds would change the f64
    // bit-pattern and fail the exact comparison.
    for seed in [4, 13] {
        let n: Index = 64;
        let base = uniform::matrix(n, n, 6 * n as usize, seed);
        let mut coo = Coo::new(n, n);
        for (r, c, v) in base.iter() {
            coo.push(r, c, v);
            coo.push(r, c, 0.25 * v); // duplicate coordinate, different value
        }
        let b = coo.to_csr();
        let a = uniform::matrix(n, n, 6 * n as usize, seed ^ 0x5bd1);
        assert_all_paths_identical(&a, &b, &format!("duplicate_coo@{seed}"));
    }
}

#[test]
fn degenerate_one_by_n_and_n_by_one_products() {
    for seed in [6, 21] {
        let n: Index = 120;
        // (1×N)·(N×1): a single result row with one single-entry chunk per
        // active k — the single-chunk fast path and 1-row batching edge.
        let row_vec = uniform::matrix(n, 1, (n / 2) as usize, seed).transpose();
        let col_vec = uniform::matrix(n, 1, (n / 2) as usize, seed ^ 0x9e37);
        assert_all_paths_identical(&row_vec, &col_vec, &format!("1xN_Nx1@{seed}"));
        // (N×1)·(1×N): rank-one blowup — every result row is exactly one
        // chunk spanning the full column range.
        assert_all_paths_identical(
            &col_vec,
            &row_vec,
            &format!("Nx1_1xN@{seed}"),
        );
    }
}

#[test]
fn tall_and_wide_rectangles() {
    for seed in [8, 15] {
        let a = uniform::matrix(150, 40, 600, seed);
        let b = uniform::matrix(40, 230, 600, seed ^ 0x9e37);
        assert_all_paths_identical(&a, &b, &format!("rect@{seed}"));
    }
}

#[test]
fn columns_spanning_many_merge_blocks() {
    // ncols far beyond MERGE_BLOCK_COLS with entries at both extremes of
    // the column range, so the blocked merger must hop blocks sparsely
    // rather than sweep them densely.
    let ncols: Index = 3 * outerspace_outer::MERGE_BLOCK_COLS as Index + 17;
    let mut coo = Coo::new(4, ncols);
    for (i, &c) in [0, 1, 4095, 4096, 8191, 8192, ncols - 1].iter().enumerate() {
        coo.push(0, c % ncols, 1.0 + i as f64);
        coo.push(1, (c + 7) % ncols, 2.0 + i as f64);
    }
    let b = coo.to_csr();
    let mut left = Coo::new(3, 4);
    left.push(0, 0, 2.0);
    left.push(0, 1, -1.0);
    left.push(1, 1, 0.5);
    left.push(2, 0, 1.0);
    left.push(2, 1, 1.0); // rows 0 and 1 of B collide in result row 2
    let a = left.to_csr();
    assert_all_paths_identical(&a, &b, "wide_blocks");
}
