//! The outer-product sparse matrix multiplication algorithm of the
//! OuterSPACE paper (§4), as portable software.
//!
//! `C = A × B` is decomposed into `N` rank-1 outer products: the *i*-th
//! column of `A` times the *i*-th row of `B`. Computation proceeds in two
//! phases with opposite data-sharing behaviour:
//!
//! 1. **Multiply** ([`multiply`]): every pair of non-zeros
//!    `(a_ki, b_ij)` produces a useful elementary product — no index
//!    matching, every element of a row-of-`B` is reused for every element of
//!    the paired column-of-`A`, and once an outer product is done its inputs
//!    are never touched again. The results are stored as per-result-row
//!    lists of contiguous *chunks* ([`PartialProducts`], Fig. 2's linked
//!    lists).
//! 2. **Merge** ([`merge`]): each result row's chunks are combined
//!    independently — the paper's streaming multi-way merge that keeps only
//!    one head element per chunk resident (§5.4.2), chosen over a full sort
//!    to minimize memory traffic.
//!
//! Both phases come in sequential and multi-threaded flavours; the
//! multi-threaded versions schedule over work-stealing ranges
//! ([`worksteal`]) and reconstruct their outputs in item order, so they are
//! byte-identical to the sequential paths for every thread count. Format
//! conversion (§4.3, `I_CC × A_CR → A_CC`), outer-product SpMV (§5.6) and
//! `N`-way element-wise operations (§5.6) are built from the same
//! machinery.
//!
//! For raw software speed, the chunk-list intermediate has an arena twin
//! ([`ArenaProducts`], six allocations per multiply phase instead of one
//! per chunk) and the merge has a cache-blocked variant
//! ([`MergeKind::Blocked`]); [`spgemm_blocked`] and
//! [`spgemm_arena_parallel`] combine them. All variants produce
//! bitwise-identical results (see DESIGN.md §14).
//!
//! # Example
//!
//! ```
//! use outerspace_sparse::Csr;
//! use outerspace_outer::spgemm;
//!
//! # fn main() -> Result<(), outerspace_sparse::SparseError> {
//! let a = Csr::identity(4);
//! let c = spgemm(&a, &a)?;
//! assert!(c.approx_eq(&a, 0.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod chunks;
mod convert;
mod elementwise;
mod merge;
mod multiply;
mod sparch;
mod spgemm;
mod spmv;
pub mod worksteal;

pub use arena::{multiply_arena, multiply_arena_parallel, ArenaProducts};
pub use chunks::{Chunk, MultiplyStats, PartialProducts};
pub use convert::{csr_to_csc_via_outer, ConversionStats};
pub use elementwise::{elementwise_merge, sum_all, sum_all_parallel};
pub use merge::{
    merge, merge_arena, merge_arena_parallel, merge_parallel, merge_sort_based,
    MergeKind, MergeStats, MERGE_BLOCK_COLS,
};
pub use multiply::{multiply, multiply_parallel};
pub use sparch::{
    condense, spgemm_sparch, spgemm_sparch_with_plan, CondensedA, CondensedEntry,
    SparchMergeOp, SparchPlan, DEFAULT_MERGE_WAYS,
};
pub use spgemm::{
    multiply_only, spgemm, spgemm_arena, spgemm_arena_parallel, spgemm_blocked,
    spgemm_cc, spgemm_parallel, spgemm_with_stats, SpGemmReport,
};
pub use spmv::{spmv, spmv_dense, SpmvStats};
