//! Flat arena storage for the multiply-phase intermediate.
//!
//! [`crate::PartialProducts`] mirrors the paper's Fig. 2 linked lists
//! directly: every chunk owns two heap-allocated `Vec`s and every row owns a
//! `Vec` of chunks. That layout is faithful but slow in software — a
//! multiply phase performs one allocator round-trip per chunk (millions for
//! realistic inputs) and scatters chunk payloads across the heap, so the
//! merge phase chases pointers instead of streaming.
//!
//! [`ArenaProducts`] stores the same information in four flat arrays:
//!
//! ```text
//! cols/vals        all chunk payloads, grouped by result row, chunks in
//!                  k-ascending order within a row
//! chunk_ptr[c]     entry offset where chunk c starts (len total_chunks+1)
//! row_chunk_ptr[i] chunk index where row i's chunks start (len nrows+1)
//! ```
//!
//! [`multiply_arena`] builds it in two passes over the operands: pass 1
//! counts chunks and entries per result row (touching only the index
//! arrays), pass 2 writes every scaled payload into its pre-computed slot.
//! Total allocations for the whole phase: six, regardless of input size.
//! The layout is exactly the sequential fill order, so
//! [`multiply_arena_parallel`] can reconstruct a **byte-identical** arena
//! from per-worker shards by replaying them in k order — the determinism
//! property the concurrency regression tests pin.

use outerspace_sparse::{Csc, Csr, Index, SparseError, Value};

use crate::chunks::{MultiplyStats, PartialProducts};
use crate::worksteal::WorkStealQueues;

/// Outer products per work-stealing batch in
/// [`multiply_arena_parallel`]. Coarse enough to amortize queue traffic,
/// fine enough that a dense column cannot serialize the tail.
const MULTIPLY_GRAIN: u32 = 8;

/// The multiply phase's output in flat arena form. Semantically identical
/// to [`PartialProducts`] (same chunks, same per-row order); only the
/// storage differs. See the module docs for the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaProducts {
    nrows: Index,
    ncols: Index,
    cols: Vec<Index>,
    vals: Vec<Value>,
    chunk_ptr: Vec<usize>,
    row_chunk_ptr: Vec<usize>,
}

impl ArenaProducts {
    /// Number of result rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of result columns (bound for merge output).
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Total stored elementary products.
    pub fn total_entries(&self) -> usize {
        self.cols.len()
    }

    /// Total number of chunks.
    pub fn total_chunks(&self) -> usize {
        self.chunk_ptr.len() - 1
    }

    /// Number of chunks contributing to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_chunk_count(&self, i: Index) -> usize {
        self.row_chunk_ptr[i as usize + 1] - self.row_chunk_ptr[i as usize]
    }

    /// The `(cols, vals)` slice pair of every chunk contributing to row
    /// `i`, in the same order [`PartialProducts::row_chunks`] would list
    /// them (k-ascending).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_chunk_slices(
        &self,
        i: Index,
    ) -> impl Iterator<Item = (&[Index], &[Value])> + '_ {
        let lo = self.row_chunk_ptr[i as usize];
        let hi = self.row_chunk_ptr[i as usize + 1];
        (lo..hi).map(move |c| {
            let s = self.chunk_ptr[c];
            let e = self.chunk_ptr[c + 1];
            (&self.cols[s..e], &self.vals[s..e])
        })
    }

    /// Memory footprint in bytes: 12 B per stored element plus 8 B per
    /// chunk pointer and 8 B per row pointer. Comparable to
    /// [`PartialProducts::memory_footprint_bytes`] but with 8 B of chunk
    /// bookkeeping instead of 16 B — the arena needs no separate
    /// length/capacity words.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.cols.len() * 12 + self.chunk_ptr.len() * 8 + self.row_chunk_ptr.len() * 8
    }

    /// Converts the linked-list representation into arena form (same
    /// chunks, same order). Used by tests and by callers that built a
    /// [`PartialProducts`] incrementally.
    pub fn from_partial_products(pp: &PartialProducts) -> ArenaProducts {
        let nrows = pp.nrows();
        let mut builder = ArenaBuilder::new(nrows, pp.ncols());
        for i in 0..nrows {
            for chunk in pp.row_chunks(i) {
                builder.count_chunk(i, chunk.len());
            }
        }
        builder.seal_counts();
        for i in 0..nrows {
            for chunk in pp.row_chunks(i) {
                builder.place_chunk(i, &chunk.cols, |dst| dst.copy_from_slice(&chunk.vals));
            }
        }
        builder.finish()
    }
}

/// Two-pass arena construction: count every chunk, seal the layout, then
/// place every chunk in the *same order*. Shared by the sequential build,
/// the parallel reconstruction, and `from_partial_products`.
struct ArenaBuilder {
    nrows: Index,
    ncols: Index,
    /// Pass 1: chunks per row. After `seal_counts`: next chunk slot per row.
    row_chunk_cursor: Vec<usize>,
    /// Pass 1: entries per row. After `seal_counts`: next entry slot per row.
    row_entry_cursor: Vec<usize>,
    row_chunk_ptr: Vec<usize>,
    chunk_ptr: Vec<usize>,
    cols: Vec<Index>,
    vals: Vec<Value>,
}

impl ArenaBuilder {
    fn new(nrows: Index, ncols: Index) -> ArenaBuilder {
        ArenaBuilder {
            nrows,
            ncols,
            row_chunk_cursor: vec![0; nrows as usize],
            row_entry_cursor: vec![0; nrows as usize],
            row_chunk_ptr: Vec::new(),
            chunk_ptr: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn count_chunk(&mut self, i: Index, len: usize) {
        self.row_chunk_cursor[i as usize] += 1;
        self.row_entry_cursor[i as usize] += len;
    }

    /// Turns the per-row counts into start cursors and allocates the whole
    /// arena — the only data-sized allocations of the build.
    fn seal_counts(&mut self) {
        let nrows = self.nrows as usize;
        self.row_chunk_ptr = Vec::with_capacity(nrows + 1);
        self.row_chunk_ptr.push(0);
        let mut chunk_acc = 0usize;
        let mut entry_acc = 0usize;
        for i in 0..nrows {
            chunk_acc += self.row_chunk_cursor[i];
            self.row_chunk_ptr.push(chunk_acc);
            let entries = self.row_entry_cursor[i];
            self.row_entry_cursor[i] = entry_acc;
            entry_acc += entries;
        }
        self.row_chunk_cursor.copy_from_slice(&self.row_chunk_ptr[..nrows]);
        self.chunk_ptr = vec![0; chunk_acc + 1];
        self.chunk_ptr[chunk_acc] = entry_acc;
        self.cols = vec![0; entry_acc];
        self.vals = vec![0.0; entry_acc];
    }

    /// Places one chunk into row `i`'s next slot: copies `src_cols` and
    /// lets `fill_vals` write the values in place (so the multiply phase
    /// scales straight into the arena with no bounce buffer).
    fn place_chunk<F: FnOnce(&mut [Value])>(
        &mut self,
        i: Index,
        src_cols: &[Index],
        fill_vals: F,
    ) {
        let r = i as usize;
        let c = self.row_chunk_cursor[r];
        self.row_chunk_cursor[r] = c + 1;
        let start = self.row_entry_cursor[r];
        let end = start + src_cols.len();
        self.row_entry_cursor[r] = end;
        self.chunk_ptr[c] = start;
        self.cols[start..end].copy_from_slice(src_cols);
        fill_vals(&mut self.vals[start..end]);
    }

    fn finish(self) -> ArenaProducts {
        debug_assert_eq!(self.row_chunk_cursor.last(), self.row_chunk_ptr.last());
        ArenaProducts {
            nrows: self.nrows,
            ncols: self.ncols,
            cols: self.cols,
            vals: self.vals,
            chunk_ptr: self.chunk_ptr,
            row_chunk_ptr: self.row_chunk_ptr,
        }
    }
}

/// Runs the multiply phase sequentially into an arena: same chunks and
/// identical [`MultiplyStats`] as [`crate::multiply`], two passes over the
/// operands, six allocations total.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn multiply_arena(
    a: &Csc,
    b: &Csr,
) -> Result<(ArenaProducts, MultiplyStats), SparseError> {
    outerspace_sparse::ops::check_spgemm_dims(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
    )?;
    let mut builder = ArenaBuilder::new(a.nrows(), b.ncols());
    // Pass 1: only the index arrays are touched — column row-lists of A and
    // row lengths of B — so the counting sweep is cheap relative to pass 2.
    for k in 0..a.ncols() {
        let (a_rows, _) = a.col(k);
        let (b_cols, _) = b.row(k);
        if a_rows.is_empty() || b_cols.is_empty() {
            continue;
        }
        for &i in a_rows {
            builder.count_chunk(i, b_cols.len());
        }
    }
    builder.seal_counts();
    let mut stats = MultiplyStats::default();
    for k in 0..a.ncols() {
        outer_product_arena(a, b, k, &mut builder, &mut stats);
    }
    Ok((builder.finish(), stats))
}

/// Computes outer product `k` straight into the arena, maintaining the same
/// counters as the chunk-list path.
fn outer_product_arena(
    a: &Csc,
    b: &Csr,
    k: Index,
    builder: &mut ArenaBuilder,
    stats: &mut MultiplyStats,
) {
    let (a_rows, a_vals) = a.col(k);
    let (b_cols, b_vals) = b.row(k);
    if a_rows.is_empty() || b_cols.is_empty() {
        return;
    }
    stats.nonempty_outer_products += 1;
    stats.bytes_read += 12 * (a_rows.len() + b_cols.len()) as u64;
    for (&i, &a_ik) in a_rows.iter().zip(a_vals) {
        builder.place_chunk(i, b_cols, |dst| {
            for (d, &b_kj) in dst.iter_mut().zip(b_vals) {
                *d = a_ik * b_kj;
            }
        });
        stats.elementary_products += b_cols.len() as u64;
        stats.bytes_written += 12 * b_cols.len() as u64;
        stats.chunks += 1;
    }
}

/// One worker's multiply output: payloads in processing order plus the
/// records needed to replay them in k order.
#[derive(Default)]
struct Shard {
    cols: Vec<Index>,
    vals: Vec<Value>,
    /// `(k, i, start, len)`: chunk for row `i` from outer product `k`,
    /// occupying `start..start+len` of this shard's payload arrays.
    recs: Vec<(Index, Index, usize, usize)>,
    stats: MultiplyStats,
}

/// Runs the multiply phase with `n_threads` workers over work-stealing
/// k-ranges (see [`crate::worksteal`]), then reconstructs the arena by
/// replaying every worker's records in k-ascending order.
///
/// Because each outer product is owned by exactly one worker and replay
/// order is k-ascending regardless of which worker ran what, the result is
/// **byte-identical** to [`multiply_arena`] for every thread count — the
/// schedule cannot leak into the output.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn multiply_arena_parallel(
    a: &Csc,
    b: &Csr,
    n_threads: usize,
) -> Result<(ArenaProducts, MultiplyStats), SparseError> {
    assert!(n_threads > 0, "need at least one thread");
    outerspace_sparse::ops::check_spgemm_dims(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
    )?;
    let n = a.ncols();
    let queues = WorkStealQueues::split(n, n_threads);
    let shards: Vec<Shard> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|me| {
                let queues = &queues;
                scope.spawn(move || {
                    let mut shard = Shard::default();
                    while let Some((lo, hi)) = queues.take(me, MULTIPLY_GRAIN) {
                        for k in lo..hi {
                            let (a_rows, a_vals) = a.col(k);
                            let (b_cols, b_vals) = b.row(k);
                            if a_rows.is_empty() || b_cols.is_empty() {
                                continue;
                            }
                            shard.stats.nonempty_outer_products += 1;
                            shard.stats.bytes_read +=
                                12 * (a_rows.len() + b_cols.len()) as u64;
                            for (&i, &a_ik) in a_rows.iter().zip(a_vals) {
                                let start = shard.cols.len();
                                shard.cols.extend_from_slice(b_cols);
                                shard.vals.extend(b_vals.iter().map(|&b_kj| a_ik * b_kj));
                                shard.recs.push((k, i, start, b_cols.len()));
                                shard.stats.elementary_products += b_cols.len() as u64;
                                shard.stats.bytes_written += 12 * b_cols.len() as u64;
                                shard.stats.chunks += 1;
                            }
                        }
                    }
                    shard
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    // Each k was processed wholly by one worker, as one contiguous run of
    // records; index those runs and replay them in k order.
    let mut runs: Vec<(Index, u32, u32, u32)> = Vec::new(); // (k, shard, rec_lo, rec_hi)
    for (s, shard) in shards.iter().enumerate() {
        let mut r = 0;
        while r < shard.recs.len() {
            let k = shard.recs[r].0;
            let lo = r;
            while r < shard.recs.len() && shard.recs[r].0 == k {
                r += 1;
            }
            runs.push((k, s as u32, lo as u32, r as u32));
        }
    }
    runs.sort_unstable_by_key(|&(k, ..)| k);

    let mut builder = ArenaBuilder::new(a.nrows(), b.ncols());
    for &(_, s, lo, hi) in &runs {
        for &(_, i, _, len) in &shards[s as usize].recs[lo as usize..hi as usize] {
            builder.count_chunk(i, len);
        }
    }
    builder.seal_counts();
    for &(_, s, lo, hi) in &runs {
        let shard = &shards[s as usize];
        for &(_, i, start, len) in &shard.recs[lo as usize..hi as usize] {
            builder.place_chunk(i, &shard.cols[start..start + len], |dst| {
                dst.copy_from_slice(&shard.vals[start..start + len]);
            });
        }
    }
    let mut stats = MultiplyStats::default();
    for shard in &shards {
        stats.elementary_products += shard.stats.elementary_products;
        stats.chunks += shard.stats.chunks;
        stats.nonempty_outer_products += shard.stats.nonempty_outer_products;
        stats.bytes_read += shard.stats.bytes_read;
        stats.bytes_written += shard.stats.bytes_written;
    }
    Ok((builder.finish(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiply::multiply;
    use outerspace_gen::uniform;

    fn operand_pair(n: u32, nnz: usize, seed: u64) -> (Csc, Csr) {
        let a = uniform::matrix(n, n, nnz, seed);
        let b = uniform::matrix(n, n, nnz, seed + 1);
        (a.to_csc(), b)
    }

    #[test]
    fn arena_matches_chunk_list_multiply_exactly() {
        let (a, b) = operand_pair(64, 500, 7);
        let (pp, s_list) = multiply(&a, &b).unwrap();
        let (ap, s_arena) = multiply_arena(&a, &b).unwrap();
        assert_eq!(s_list, s_arena);
        assert_eq!(ap, ArenaProducts::from_partial_products(&pp));
    }

    #[test]
    fn parallel_arena_is_byte_identical_to_sequential() {
        let (a, b) = operand_pair(96, 1200, 11);
        let (seq, s_seq) = multiply_arena(&a, &b).unwrap();
        for threads in [1, 2, 3, 5] {
            let (par, s_par) = multiply_arena_parallel(&a, &b, threads).unwrap();
            assert_eq!(seq, par, "{threads} threads");
            assert_eq!(s_seq, s_par, "{threads} threads");
        }
    }

    #[test]
    fn row_chunk_slices_reproduce_partial_products() {
        let (a, b) = operand_pair(32, 200, 3);
        let (pp, _) = multiply(&a, &b).unwrap();
        let (ap, _) = multiply_arena(&a, &b).unwrap();
        for i in 0..pp.nrows() {
            let chunks = pp.row_chunks(i);
            let slices: Vec<_> = ap.row_chunk_slices(i).collect();
            assert_eq!(chunks.len(), slices.len(), "row {i}");
            for (chunk, (cols, vals)) in chunks.iter().zip(&slices) {
                assert_eq!(&chunk.cols[..], *cols);
                assert_eq!(&chunk.vals[..], *vals);
            }
        }
    }

    #[test]
    fn empty_operands_build_empty_arena() {
        let a = Csc::zero(4, 4);
        let b = Csr::identity(4);
        let (ap, stats) = multiply_arena(&a, &b).unwrap();
        assert_eq!(ap.total_chunks(), 0);
        assert_eq!(ap.total_entries(), 0);
        assert_eq!(stats.elementary_products, 0);
    }

    #[test]
    fn shape_mismatch_detected() {
        let a = Csc::zero(2, 3);
        let b = Csr::zero(2, 2);
        assert!(multiply_arena(&a, &b).is_err());
        assert!(multiply_arena_parallel(&a, &b, 2).is_err());
    }

    #[test]
    fn footprint_is_leaner_than_chunk_lists() {
        let (a, b) = operand_pair(64, 800, 19);
        let (pp, _) = multiply(&a, &b).unwrap();
        let (ap, _) = multiply_arena(&a, &b).unwrap();
        assert!(ap.memory_footprint_bytes() < pp.memory_footprint_bytes());
    }
}
