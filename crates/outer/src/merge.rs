//! The merge phase (§4.2, §5.4.2): combine partial products into the result.
//!
//! Each result row is processed independently (the phase with *no* data
//! sharing, which OuterSPACE exploits by reconfiguring its caches into
//! private scratchpads). Two strategies are provided:
//!
//! * [`MergeKind::Streaming`] — the paper's algorithm: keep one *head*
//!   element per chunk in a sorted working set, repeatedly emit the smallest
//!   column index (summing collisions) and refill from that chunk. Local
//!   memory holds only `O(chunks)` elements, minimizing traffic; total work
//!   is `O(r³N³)` in the paper's uniform-density notation.
//! * [`MergeKind::SortBased`] — the algorithmically-cheaper alternative the
//!   paper rejects (§5.4.2): concatenate every chunk and sort
//!   (`O(rN log rN)` per row), at the cost of holding entire rows in local
//!   memory. Kept as the ablation baseline.

use std::collections::BinaryHeap;
use std::sync::Mutex;

use outerspace_sparse::{Csr, Index, Value};

use crate::chunks::{Chunk, PartialProducts};

/// Which merge algorithm to run. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeKind {
    /// The paper's streaming multi-way merge (default).
    #[default]
    Streaming,
    /// Concatenate-and-sort ablation baseline.
    SortBased,
}

/// Counters captured during a merge phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Entries in the merged result.
    pub output_entries: u64,
    /// Elementary additions performed (index collisions across outer
    /// products; rare for very sparse matrices, §4.2).
    pub collisions: u64,
    /// Bytes streamed in from the intermediate structure (12 B per element).
    pub bytes_read: u64,
    /// Bytes written to the result (12 B per element).
    pub bytes_written: u64,
    /// Working-set insertions (list/heap sort steps) — the hardware sort
    /// cost the simulator's merge model charges per element.
    pub sort_steps: u64,
}

impl MergeStats {
    fn absorb(&mut self, o: MergeStats) {
        self.output_entries += o.output_entries;
        self.collisions += o.collisions;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.sort_steps += o.sort_steps;
    }
}

/// Merges all rows sequentially with the chosen algorithm, producing the
/// final CSR result.
pub fn merge(mut pp: PartialProducts, kind: MergeKind) -> (Csr, MergeStats) {
    let nrows = pp.nrows();
    let mut row_ptr = Vec::with_capacity(nrows as usize + 1);
    row_ptr.push(0usize);
    let mut cols: Vec<Index> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    let mut stats = MergeStats::default();
    for i in 0..nrows {
        let chunks = pp.take_row(i);
        let s = merge_row(&chunks, kind, &mut cols, &mut vals);
        stats.absorb(s);
        row_ptr.push(cols.len());
    }
    let ncols = pp.ncols();
    (Csr::from_raw_parts_unchecked(nrows, ncols, row_ptr, cols, vals), stats)
}

/// Merges rows with `n_threads` workers pulling row blocks from a greedy
/// work counter, then stitches the per-block outputs together.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn merge_parallel(
    mut pp: PartialProducts,
    kind: MergeKind,
    n_threads: usize,
) -> (Csr, MergeStats) {
    assert!(n_threads > 0, "need at least one thread");
    const BLOCK: u32 = 256;
    let nrows = pp.nrows();
    let ncols = pp.ncols();
    let n_blocks = nrows.div_ceil(BLOCK);
    // Pre-split the rows so each worker owns its slice without locking.
    let mut row_lists: Vec<Vec<Chunk>> =
        (0..nrows).map(|i| pp.take_row(i)).collect();
    let blocks: Vec<(u32, &mut [Vec<Chunk>])> = {
        let mut rest = row_lists.as_mut_slice();
        let mut out = Vec::with_capacity(n_blocks as usize);
        let mut idx = 0u32;
        while !rest.is_empty() {
            let take = rest.len().min(BLOCK as usize);
            let (head, tail) = rest.split_at_mut(take);
            out.push((idx, head));
            rest = tail;
            idx += 1;
        }
        out
    };
    let work = Mutex::new(blocks);

    type BlockOut = (u32, Vec<usize>, Vec<Index>, Vec<Value>, MergeStats);
    let mut outputs: Vec<BlockOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let work = &work;
                scope.spawn(move || {
                    let mut done: Vec<BlockOut> = Vec::new();
                    loop {
                        let item = work.lock().expect("queue poisoned").pop();
                        let Some((block_idx, rows)) = item else { break };
                        let mut cols = Vec::new();
                        let mut vals = Vec::new();
                        let mut sizes = Vec::with_capacity(rows.len());
                        let mut stats = MergeStats::default();
                        for chunks in rows.iter() {
                            let before = cols.len();
                            let s = merge_row(chunks, kind, &mut cols, &mut vals);
                            stats.absorb(s);
                            sizes.push(cols.len() - before);
                        }
                        done.push((block_idx, sizes, cols, vals, stats));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    outputs.sort_by_key(|&(idx, ..)| idx);
    let mut row_ptr = Vec::with_capacity(nrows as usize + 1);
    row_ptr.push(0usize);
    let mut cols: Vec<Index> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    let mut stats = MergeStats::default();
    for (_, sizes, bcols, bvals, s) in outputs {
        for size in sizes {
            let base = *row_ptr.last().expect("non-empty");
            row_ptr.push(base + size);
        }
        cols.extend_from_slice(&bcols);
        vals.extend_from_slice(&bvals);
        stats.absorb(s);
    }
    (Csr::from_raw_parts_unchecked(nrows, ncols, row_ptr, cols, vals), stats)
}

/// Sort-based single-row merge exposed for benchmarks.
pub fn merge_sort_based(pp: PartialProducts) -> (Csr, MergeStats) {
    merge(pp, MergeKind::SortBased)
}

/// Merges one row's chunks, appending the combined entries to `cols`/`vals`.
fn merge_row(
    chunks: &[Chunk],
    kind: MergeKind,
    cols: &mut Vec<Index>,
    vals: &mut Vec<Value>,
) -> MergeStats {
    match kind {
        MergeKind::Streaming => merge_row_streaming(chunks, cols, vals),
        MergeKind::SortBased => merge_row_sort(chunks, cols, vals),
    }
}

/// Head entry in the streaming working set: smallest column first.
#[derive(PartialEq, Eq)]
struct Head {
    col: Index,
    chunk: u32,
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the minimum column.
        other.col.cmp(&self.col).then(other.chunk.cmp(&self.chunk))
    }
}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn merge_row_streaming(
    chunks: &[Chunk],
    cols: &mut Vec<Index>,
    vals: &mut Vec<Value>,
) -> MergeStats {
    let mut stats = MergeStats::default();
    // Step 1 (§5.4.2): fetch the head of each chunk into the sorted working
    // set. Only one element per chunk is ever resident.
    let mut heads = BinaryHeap::with_capacity(chunks.len());
    let mut cursor = vec![0usize; chunks.len()];
    for (ci, chunk) in chunks.iter().enumerate() {
        if !chunk.is_empty() {
            heads.push(Head { col: chunk.cols[0], chunk: ci as u32 });
            stats.sort_steps += 1;
            stats.bytes_read += 12;
        }
    }
    // Steps 2-3: repeatedly emit the smallest column, accumulating
    // collisions, and refill from the source chunk.
    let mut current: Option<(Index, Value)> = None;
    while let Some(Head { col, chunk }) = heads.pop() {
        let ci = chunk as usize;
        let pos = cursor[ci];
        let v = chunks[ci].vals[pos];
        match current {
            Some((ccol, ref mut acc)) if ccol == col => {
                *acc += v;
                stats.collisions += 1;
            }
            Some((ccol, acc)) => {
                cols.push(ccol);
                vals.push(acc);
                current = Some((col, v));
            }
            None => current = Some((col, v)),
        }
        cursor[ci] += 1;
        if cursor[ci] < chunks[ci].len() {
            heads.push(Head { col: chunks[ci].cols[cursor[ci]], chunk });
            stats.sort_steps += 1;
            stats.bytes_read += 12;
        }
    }
    if let Some((ccol, acc)) = current {
        cols.push(ccol);
        vals.push(acc);
    }
    // Every fetched element either became an output entry or a collision.
    stats.output_entries = (stats.bytes_read / 12) - stats.collisions;
    stats.bytes_written += stats.output_entries * 12;
    stats
}

fn merge_row_sort(
    chunks: &[Chunk],
    cols: &mut Vec<Index>,
    vals: &mut Vec<Value>,
) -> MergeStats {
    let mut stats = MergeStats::default();
    let total: usize = chunks.iter().map(Chunk::len).sum();
    let mut buf: Vec<(Index, Value)> = Vec::with_capacity(total);
    for chunk in chunks {
        buf.extend(chunk.cols.iter().copied().zip(chunk.vals.iter().copied()));
    }
    stats.bytes_read += 12 * total as u64;
    // Stable sort keeps duplicate accumulation order deterministic.
    buf.sort_by_key(|&(c, _)| c);
    // log2(total) comparisons per element, as the merge-sort cost model.
    stats.sort_steps +=
        (total as u64) * (usize::BITS - total.leading_zeros().min(usize::BITS - 1)) as u64;
    let mut i = 0;
    while i < buf.len() {
        let (c, mut v) = buf[i];
        let mut j = i + 1;
        while j < buf.len() && buf[j].0 == c {
            v += buf[j].1;
            stats.collisions += 1;
            j += 1;
        }
        cols.push(c);
        vals.push(v);
        stats.output_entries += 1;
        i = j;
    }
    stats.bytes_written += stats.output_entries * 12;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiply::multiply;
    use outerspace_sparse::{ops, Csc, Dense};

    fn chunk(entries: &[(Index, Value)]) -> Chunk {
        Chunk {
            cols: entries.iter().map(|&(c, _)| c).collect(),
            vals: entries.iter().map(|&(_, v)| v).collect(),
        }
    }

    #[test]
    fn streaming_merges_disjoint_chunks() {
        let mut pp = PartialProducts::new(1, 8);
        pp.push_chunk(0, chunk(&[(0, 1.0), (4, 2.0)]));
        pp.push_chunk(0, chunk(&[(2, 3.0), (6, 4.0)]));
        let (c, stats) = merge(pp, MergeKind::Streaming);
        assert_eq!(c.row(0).0, &[0, 2, 4, 6]);
        assert_eq!(c.row(0).1, &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(stats.collisions, 0);
        assert_eq!(stats.output_entries, 4);
    }

    #[test]
    fn streaming_accumulates_collisions() {
        let mut pp = PartialProducts::new(1, 8);
        pp.push_chunk(0, chunk(&[(3, 1.0), (5, 1.0)]));
        pp.push_chunk(0, chunk(&[(3, 2.0)]));
        pp.push_chunk(0, chunk(&[(3, 4.0), (5, 8.0)]));
        let (c, stats) = merge(pp, MergeKind::Streaming);
        assert_eq!(c.row(0).0, &[3, 5]);
        assert_eq!(c.row(0).1, &[7.0, 9.0]);
        assert_eq!(stats.collisions, 3);
        assert_eq!(stats.output_entries, 2);
    }

    #[test]
    fn sort_based_agrees_with_streaming() {
        let mut pp1 = PartialProducts::new(2, 16);
        let mut pp2 = PartialProducts::new(2, 16);
        for pp in [&mut pp1, &mut pp2] {
            pp.push_chunk(0, chunk(&[(1, 1.0), (9, 2.0), (15, 3.0)]));
            pp.push_chunk(0, chunk(&[(0, 4.0), (9, 5.0)]));
            pp.push_chunk(1, chunk(&[(7, 6.0)]));
        }
        let (c1, s1) = merge(pp1, MergeKind::Streaming);
        let (c2, s2) = merge(pp2, MergeKind::SortBased);
        assert_eq!(c1, c2);
        assert_eq!(s1.collisions, s2.collisions);
        assert_eq!(s1.output_entries, s2.output_entries);
    }

    #[test]
    fn empty_rows_produce_empty_result_rows() {
        let pp = PartialProducts::new(3, 3);
        let (c, stats) = merge(pp, MergeKind::Streaming);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 3);
        assert_eq!(stats.output_entries, 0);
    }

    #[test]
    fn parallel_merge_matches_sequential() {
        let a = Dense::from_row_major(
            4,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 3.0, 0.0, 1.0, //
                4.0, 0.0, 0.0, 5.0, //
                0.0, 6.0, 7.0, 0.0,
            ],
        )
        .to_csr();
        let a_cc: Csc = a.to_csc();
        let (pp1, _) = multiply(&a_cc, &a).unwrap();
        let (pp2, _) = multiply(&a_cc, &a).unwrap();
        let (c_seq, s_seq) = merge(pp1, MergeKind::Streaming);
        let (c_par, s_par) = merge_parallel(pp2, MergeKind::Streaming, 3);
        assert_eq!(c_seq, c_par);
        assert_eq!(s_seq.output_entries, s_par.output_entries);
        let want = ops::spgemm_reference(&a, &a).unwrap();
        assert!(c_seq.approx_eq(&want, 1e-12));
    }

    #[test]
    fn merge_stats_byte_accounting() {
        let mut pp = PartialProducts::new(1, 4);
        pp.push_chunk(0, chunk(&[(0, 1.0), (1, 2.0)]));
        let (_, stats) = merge(pp, MergeKind::Streaming);
        assert_eq!(stats.bytes_read, 24);
        assert_eq!(stats.bytes_written, 24);
    }
}
