//! The merge phase (§4.2, §5.4.2): combine partial products into the result.
//!
//! Each result row is processed independently (the phase with *no* data
//! sharing, which OuterSPACE exploits by reconfiguring its caches into
//! private scratchpads). Three strategies are provided:
//!
//! * [`MergeKind::Streaming`] — the paper's algorithm: keep one *head*
//!   element per chunk in a sorted working set, repeatedly emit the smallest
//!   column index (summing collisions) and refill from that chunk. Local
//!   memory holds only `O(chunks)` elements, minimizing traffic; total work
//!   is `O(r³N³)` in the paper's uniform-density notation.
//! * [`MergeKind::SortBased`] — the algorithmically-cheaper alternative the
//!   paper rejects (§5.4.2): concatenate every chunk and sort
//!   (`O(rN log rN)` per row), at the cost of holding entire rows in local
//!   memory. Kept as the ablation baseline.
//! * [`MergeKind::Blocked`] — the software raw-speed variant: scatter each
//!   chunk segment into a dense accumulator covering one
//!   [`MERGE_BLOCK_COLS`]-column block (an L1-resident scratchpad, the
//!   software analogue of the paper's reconfigured caches), using
//!   generation stamps so the scratch is reused across rows without
//!   clearing. Per element this costs one array write instead of one heap
//!   sift, at `O(block)` local memory.
//!
//! All three accumulate collisions in chunk-index-ascending order, so for a
//! given intermediate their floating-point results are **bitwise
//! identical** — the property that lets the differential oracle and the
//! determinism tests use exact equality across variants and thread counts.

use std::collections::BinaryHeap;

use outerspace_sparse::{Csr, Index, Value};

use crate::arena::ArenaProducts;
use crate::chunks::{Chunk, PartialProducts};
use crate::worksteal::WorkStealQueues;

/// Which merge algorithm to run. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeKind {
    /// The paper's streaming multi-way merge (default).
    #[default]
    Streaming,
    /// Concatenate-and-sort ablation baseline.
    SortBased,
    /// Cache-blocked dense-accumulator merge (software fast path).
    Blocked,
}

/// Columns covered by one blocked-merge accumulator block: 4096 columns of
/// (value, stamp) occupy 48 KiB — sized to sit in L1 alongside the chunk
/// cursors being streamed through it.
pub const MERGE_BLOCK_COLS: usize = 4096;

/// Result rows per parallel work item. Rows are batched so the stitch pass
/// handles `nrows / MERGE_ROW_BATCH` fragments instead of `nrows`, and so
/// one blocked-merge scratchpad serves a whole batch while it stays warm.
const MERGE_ROW_BATCH: u32 = 256;

/// Counters captured during a merge phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Entries in the merged result.
    pub output_entries: u64,
    /// Elementary additions performed (index collisions across outer
    /// products; rare for very sparse matrices, §4.2).
    pub collisions: u64,
    /// Bytes streamed in from the intermediate structure (12 B per element).
    pub bytes_read: u64,
    /// Bytes written to the result (12 B per element).
    pub bytes_written: u64,
    /// Working-set insertions (list/heap sort steps) — the hardware sort
    /// cost the simulator's merge model charges per element.
    pub sort_steps: u64,
}

impl MergeStats {
    fn absorb(&mut self, o: MergeStats) {
        self.output_entries += o.output_entries;
        self.collisions += o.collisions;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.sort_steps += o.sort_steps;
    }
}

/// A chunk's data, independent of how it is stored: owned `Vec`s
/// ([`Chunk`]) or arena slices. Lets every merge algorithm serve both the
/// linked-list and the arena intermediate without copies or per-row
/// adapter allocations.
pub(crate) trait ChunkView {
    /// Column indices, strictly increasing.
    fn view_cols(&self) -> &[Index];
    /// Values, parallel to the columns.
    fn view_vals(&self) -> &[Value];
}

impl ChunkView for Chunk {
    fn view_cols(&self) -> &[Index] {
        &self.cols
    }
    fn view_vals(&self) -> &[Value] {
        &self.vals
    }
}

impl ChunkView for (&[Index], &[Value]) {
    fn view_cols(&self) -> &[Index] {
        self.0
    }
    fn view_vals(&self) -> &[Value] {
        self.1
    }
}

/// Upper bound on merged output entries, used to pre-size the result
/// arrays: the output can be no larger than the intermediate
/// (`total_entries`) and no larger than a dense result (`nrows × ncols`).
///
/// This is the fix for the re-allocation churn audit (ISSUE 8 satellite):
/// `merge` previously grew its `cols`/`vals` output through the doubling
/// schedule — up to ~log₂(nnz) reallocation-plus-copy cycles of the entire
/// result. The dense cap uses saturating arithmetic: `u32 × u32` products
/// up to 2⁶⁴ must not overflow `usize` on 32-bit targets.
pub(crate) fn output_capacity_hint(
    total_entries: usize,
    nrows: Index,
    ncols: Index,
) -> usize {
    total_entries.min((nrows as usize).saturating_mul(ncols as usize))
}

/// Merges all rows sequentially with the chosen algorithm, producing the
/// final CSR result.
pub fn merge(mut pp: PartialProducts, kind: MergeKind) -> (Csr, MergeStats) {
    let nrows = pp.nrows();
    let ncols = pp.ncols();
    let hint = output_capacity_hint(pp.total_entries(), nrows, ncols);
    let mut row_ptr = Vec::with_capacity(nrows as usize + 1);
    row_ptr.push(0usize);
    let mut cols: Vec<Index> = Vec::with_capacity(hint);
    let mut vals: Vec<Value> = Vec::with_capacity(hint);
    let mut stats = MergeStats::default();
    let mut blocked = BlockedMerger::new();
    for i in 0..nrows {
        let chunks = pp.take_row(i);
        let s = merge_row(&chunks, kind, &mut cols, &mut vals, &mut blocked);
        stats.absorb(s);
        row_ptr.push(cols.len());
    }
    (Csr::from_raw_parts_unchecked(nrows, ncols, row_ptr, cols, vals), stats)
}

/// Merges an arena intermediate sequentially. Borrows the arena (nothing
/// is consumed), so benchmarks can merge the same intermediate repeatedly
/// and callers can compare merge variants on identical input.
pub fn merge_arena(ap: &ArenaProducts, kind: MergeKind) -> (Csr, MergeStats) {
    let nrows = ap.nrows();
    let ncols = ap.ncols();
    let hint = output_capacity_hint(ap.total_entries(), nrows, ncols);
    let mut row_ptr = Vec::with_capacity(nrows as usize + 1);
    row_ptr.push(0usize);
    let mut cols: Vec<Index> = Vec::with_capacity(hint);
    let mut vals: Vec<Value> = Vec::with_capacity(hint);
    let mut stats = MergeStats::default();
    let mut blocked = BlockedMerger::new();
    let mut scratch: Vec<(&[Index], &[Value])> = Vec::new();
    for i in 0..nrows {
        scratch.clear();
        scratch.extend(ap.row_chunk_slices(i));
        let s = merge_row(&scratch, kind, &mut cols, &mut vals, &mut blocked);
        stats.absorb(s);
        row_ptr.push(cols.len());
    }
    (Csr::from_raw_parts_unchecked(nrows, ncols, row_ptr, cols, vals), stats)
}

/// Merges rows with `n_threads` workers over work-stealing row-batch
/// queues (see [`crate::worksteal`]), then stitches the per-batch outputs
/// in batch order — so the result is identical for every thread count.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn merge_parallel(
    mut pp: PartialProducts,
    kind: MergeKind,
    n_threads: usize,
) -> (Csr, MergeStats) {
    let nrows = pp.nrows();
    let ncols = pp.ncols();
    // Pre-split the rows so workers read their batches without locking.
    let row_lists: Vec<Vec<Chunk>> = (0..nrows).map(|i| pp.take_row(i)).collect();
    merge_batches_parallel(nrows, ncols, n_threads, &|i, cols, vals, blocked| {
        merge_row(&row_lists[i as usize], kind, cols, vals, blocked)
    })
}

/// [`merge_arena`] with `n_threads` work-stealing workers. Same
/// batch-stitched determinism guarantee as [`merge_parallel`].
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn merge_arena_parallel(
    ap: &ArenaProducts,
    kind: MergeKind,
    n_threads: usize,
) -> (Csr, MergeStats) {
    merge_batches_parallel(ap.nrows(), ap.ncols(), n_threads, &|i, cols, vals, blocked| {
        let scratch: Vec<(&[Index], &[Value])> = ap.row_chunk_slices(i).collect();
        merge_row(&scratch, kind, cols, vals, blocked)
    })
}

/// Shared parallel-merge skeleton: workers pull [`MERGE_ROW_BATCH`]-row
/// batches from work-stealing queues, merge each row via `merge_one` into
/// batch-local buffers, and the batches are stitched in index order.
/// `merge_one(i, cols, vals, blocked)` appends row `i`'s merged entries.
pub(crate) fn merge_batches_parallel<F>(
    nrows: Index,
    ncols: Index,
    n_threads: usize,
    merge_one: &F,
) -> (Csr, MergeStats)
where
    F: Fn(Index, &mut Vec<Index>, &mut Vec<Value>, &mut BlockedMerger) -> MergeStats + Sync,
{
    assert!(n_threads > 0, "need at least one thread");
    let n_batches = nrows.div_ceil(MERGE_ROW_BATCH);
    let queues = WorkStealQueues::split(n_batches, n_threads);

    type BatchOut = (u32, Vec<usize>, Vec<Index>, Vec<Value>, MergeStats);
    let mut outputs: Vec<BatchOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|me| {
                let queues = &queues;
                scope.spawn(move || {
                    let mut done: Vec<BatchOut> = Vec::new();
                    let mut blocked = BlockedMerger::new();
                    // Batches are already 256 rows; grain 1 maximizes balance.
                    while let Some((lo, hi)) = queues.take(me, 1) {
                        for batch in lo..hi {
                            let row_lo = batch * MERGE_ROW_BATCH;
                            let row_hi = (row_lo + MERGE_ROW_BATCH).min(nrows);
                            let mut cols = Vec::new();
                            let mut vals = Vec::new();
                            let mut sizes =
                                Vec::with_capacity((row_hi - row_lo) as usize);
                            let mut stats = MergeStats::default();
                            for i in row_lo..row_hi {
                                let before = cols.len();
                                let s = merge_one(i, &mut cols, &mut vals, &mut blocked);
                                stats.absorb(s);
                                sizes.push(cols.len() - before);
                            }
                            done.push((batch, sizes, cols, vals, stats));
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    outputs.sort_by_key(|&(idx, ..)| idx);
    let total: usize = outputs.iter().map(|(_, _, c, ..)| c.len()).sum();
    let mut row_ptr = Vec::with_capacity(nrows as usize + 1);
    row_ptr.push(0usize);
    let mut cols: Vec<Index> = Vec::with_capacity(total);
    let mut vals: Vec<Value> = Vec::with_capacity(total);
    let mut stats = MergeStats::default();
    for (_, sizes, bcols, bvals, s) in outputs {
        for size in sizes {
            let base = *row_ptr.last().expect("non-empty");
            row_ptr.push(base + size);
        }
        cols.extend_from_slice(&bcols);
        vals.extend_from_slice(&bvals);
        stats.absorb(s);
    }
    (Csr::from_raw_parts_unchecked(nrows, ncols, row_ptr, cols, vals), stats)
}

/// Sort-based single-row merge exposed for benchmarks.
pub fn merge_sort_based(pp: PartialProducts) -> (Csr, MergeStats) {
    merge(pp, MergeKind::SortBased)
}

/// Merges one row's chunks, appending the combined entries to `cols`/`vals`.
pub(crate) fn merge_row<C: ChunkView>(
    chunks: &[C],
    kind: MergeKind,
    cols: &mut Vec<Index>,
    vals: &mut Vec<Value>,
    blocked: &mut BlockedMerger,
) -> MergeStats {
    match kind {
        MergeKind::Streaming => merge_row_streaming(chunks, cols, vals),
        MergeKind::SortBased => merge_row_sort(chunks, cols, vals),
        MergeKind::Blocked => blocked.merge_row(chunks, cols, vals),
    }
}

/// Head entry in the streaming working set: smallest column first.
#[derive(PartialEq, Eq)]
struct Head {
    col: Index,
    chunk: u32,
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the minimum column.
        other.col.cmp(&self.col).then(other.chunk.cmp(&self.chunk))
    }
}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn merge_row_streaming<C: ChunkView>(
    chunks: &[C],
    cols: &mut Vec<Index>,
    vals: &mut Vec<Value>,
) -> MergeStats {
    let mut stats = MergeStats::default();
    // Step 1 (§5.4.2): fetch the head of each chunk into the sorted working
    // set. Only one element per chunk is ever resident.
    let mut heads = BinaryHeap::with_capacity(chunks.len());
    let mut cursor = vec![0usize; chunks.len()];
    for (ci, chunk) in chunks.iter().enumerate() {
        if !chunk.view_cols().is_empty() {
            heads.push(Head { col: chunk.view_cols()[0], chunk: ci as u32 });
            stats.sort_steps += 1;
            stats.bytes_read += 12;
        }
    }
    // Steps 2-3: repeatedly emit the smallest column, accumulating
    // collisions, and refill from the source chunk.
    let mut current: Option<(Index, Value)> = None;
    while let Some(Head { col, chunk }) = heads.pop() {
        let ci = chunk as usize;
        let pos = cursor[ci];
        let v = chunks[ci].view_vals()[pos];
        match current {
            Some((ccol, ref mut acc)) if ccol == col => {
                *acc += v;
                stats.collisions += 1;
            }
            Some((ccol, acc)) => {
                cols.push(ccol);
                vals.push(acc);
                current = Some((col, v));
            }
            None => current = Some((col, v)),
        }
        cursor[ci] += 1;
        if cursor[ci] < chunks[ci].view_cols().len() {
            heads.push(Head { col: chunks[ci].view_cols()[cursor[ci]], chunk });
            stats.sort_steps += 1;
            stats.bytes_read += 12;
        }
    }
    if let Some((ccol, acc)) = current {
        cols.push(ccol);
        vals.push(acc);
    }
    // Every fetched element either became an output entry or a collision.
    stats.output_entries = (stats.bytes_read / 12) - stats.collisions;
    stats.bytes_written += stats.output_entries * 12;
    stats
}

fn merge_row_sort<C: ChunkView>(
    chunks: &[C],
    cols: &mut Vec<Index>,
    vals: &mut Vec<Value>,
) -> MergeStats {
    let mut stats = MergeStats::default();
    let total: usize = chunks.iter().map(|c| c.view_cols().len()).sum();
    let mut buf: Vec<(Index, Value)> = Vec::with_capacity(total);
    for chunk in chunks {
        buf.extend(
            chunk.view_cols().iter().copied().zip(chunk.view_vals().iter().copied()),
        );
    }
    stats.bytes_read += 12 * total as u64;
    // Stable sort keeps duplicate accumulation order deterministic.
    buf.sort_by_key(|&(c, _)| c);
    // log2(total) comparisons per element, as the merge-sort cost model.
    stats.sort_steps +=
        (total as u64) * (usize::BITS - total.leading_zeros().min(usize::BITS - 1)) as u64;
    let mut i = 0;
    while i < buf.len() {
        let (c, mut v) = buf[i];
        let mut j = i + 1;
        while j < buf.len() && buf[j].0 == c {
            v += buf[j].1;
            stats.collisions += 1;
            j += 1;
        }
        cols.push(c);
        vals.push(v);
        stats.output_entries += 1;
        i = j;
    }
    stats.bytes_written += stats.output_entries * 12;
    stats
}

/// Reusable scratch state for [`MergeKind::Blocked`].
///
/// Holds a dense accumulator over one [`MERGE_BLOCK_COLS`]-column window
/// plus a generation-stamp array: a slot belongs to the current block iff
/// its stamp equals the current generation, so advancing a block (or a
/// row) costs one counter increment instead of clearing 4096 slots. The
/// same scratch serves every row of a merge call — the row-batched reuse
/// that keeps it cache-resident.
#[derive(Debug)]
pub(crate) struct BlockedMerger {
    /// Dense value accumulator for the current block (lazily allocated so
    /// streaming/sort merges pay nothing for carrying one of these).
    acc: Vec<Value>,
    /// `stamp[off] == gen` marks `acc[off]` live in the current block.
    stamp: Vec<u32>,
    gen: u32,
    /// Block-local offsets touched in the current block, sorted at emit.
    touched: Vec<u32>,
    /// Per-chunk read positions for the current row.
    cursors: Vec<usize>,
}

impl BlockedMerger {
    pub(crate) fn new() -> BlockedMerger {
        BlockedMerger {
            acc: Vec::new(),
            stamp: Vec::new(),
            gen: 0,
            touched: Vec::new(),
            cursors: Vec::new(),
        }
    }

    fn merge_row<C: ChunkView>(
        &mut self,
        chunks: &[C],
        cols: &mut Vec<Index>,
        vals: &mut Vec<Value>,
    ) -> MergeStats {
        let mut stats = MergeStats::default();
        let mut nonempty = chunks.iter().filter(|c| !c.view_cols().is_empty());
        let Some(first) = nonempty.next() else {
            return stats;
        };
        if nonempty.next().is_none() {
            // Single-chunk fast path: the chunk is already sorted and
            // collision-free, so the merged row is a straight copy.
            let n = first.view_cols().len() as u64;
            cols.extend_from_slice(first.view_cols());
            vals.extend_from_slice(first.view_vals());
            stats.bytes_read = 12 * n;
            stats.output_entries = n;
            stats.bytes_written = 12 * n;
            return stats;
        }
        if self.acc.is_empty() {
            self.acc = vec![0.0; MERGE_BLOCK_COLS];
            self.stamp = vec![0; MERGE_BLOCK_COLS];
        }
        self.cursors.clear();
        self.cursors.resize(chunks.len(), 0);
        loop {
            // Next block = the one holding the smallest unconsumed column;
            // blocks with no entries are skipped entirely.
            let mut min_col = Index::MAX;
            let mut exhausted = true;
            for (ci, chunk) in chunks.iter().enumerate() {
                let ccols = chunk.view_cols();
                let pos = self.cursors[ci];
                if pos < ccols.len() {
                    min_col = min_col.min(ccols[pos]);
                    exhausted = false;
                }
            }
            if exhausted {
                break;
            }
            let block_lo = (min_col as usize / MERGE_BLOCK_COLS) * MERGE_BLOCK_COLS;
            let block_hi = block_lo + MERGE_BLOCK_COLS;
            self.gen = self.gen.wrapping_add(1);
            if self.gen == 0 {
                // Generation counter wrapped: stale stamps could alias the
                // new generation, so pay one full clear every 2^32 blocks.
                self.stamp.fill(0);
                self.gen = 1;
            }
            self.touched.clear();
            // Chunk-index-ascending scatter keeps collision accumulation
            // order identical to the streaming heap's tiebreak (bitwise-
            // equal floating point across merge kinds).
            for (ci, chunk) in chunks.iter().enumerate() {
                let ccols = chunk.view_cols();
                let cvals = chunk.view_vals();
                let mut pos = self.cursors[ci];
                while pos < ccols.len() && (ccols[pos] as usize) < block_hi {
                    let off = ccols[pos] as usize - block_lo;
                    if self.stamp[off] == self.gen {
                        self.acc[off] += cvals[pos];
                        stats.collisions += 1;
                    } else {
                        self.stamp[off] = self.gen;
                        self.acc[off] = cvals[pos];
                        self.touched.push(off as u32);
                    }
                    stats.bytes_read += 12;
                    stats.sort_steps += 1;
                    pos += 1;
                }
                self.cursors[ci] = pos;
            }
            self.touched.sort_unstable();
            for &off in &self.touched {
                cols.push((block_lo + off as usize) as Index);
                vals.push(self.acc[off as usize]);
            }
            stats.output_entries += self.touched.len() as u64;
        }
        stats.bytes_written = stats.output_entries * 12;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::multiply_arena;
    use crate::multiply::multiply;
    use outerspace_sparse::{ops, Csc, Dense};

    fn chunk(entries: &[(Index, Value)]) -> Chunk {
        Chunk {
            cols: entries.iter().map(|&(c, _)| c).collect(),
            vals: entries.iter().map(|&(_, v)| v).collect(),
        }
    }

    #[test]
    fn streaming_merges_disjoint_chunks() {
        let mut pp = PartialProducts::new(1, 8);
        pp.push_chunk(0, chunk(&[(0, 1.0), (4, 2.0)]));
        pp.push_chunk(0, chunk(&[(2, 3.0), (6, 4.0)]));
        let (c, stats) = merge(pp, MergeKind::Streaming);
        assert_eq!(c.row(0).0, &[0, 2, 4, 6]);
        assert_eq!(c.row(0).1, &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(stats.collisions, 0);
        assert_eq!(stats.output_entries, 4);
    }

    #[test]
    fn streaming_accumulates_collisions() {
        let mut pp = PartialProducts::new(1, 8);
        pp.push_chunk(0, chunk(&[(3, 1.0), (5, 1.0)]));
        pp.push_chunk(0, chunk(&[(3, 2.0)]));
        pp.push_chunk(0, chunk(&[(3, 4.0), (5, 8.0)]));
        let (c, stats) = merge(pp, MergeKind::Streaming);
        assert_eq!(c.row(0).0, &[3, 5]);
        assert_eq!(c.row(0).1, &[7.0, 9.0]);
        assert_eq!(stats.collisions, 3);
        assert_eq!(stats.output_entries, 2);
    }

    #[test]
    fn sort_based_agrees_with_streaming() {
        let mut pp1 = PartialProducts::new(2, 16);
        let mut pp2 = PartialProducts::new(2, 16);
        for pp in [&mut pp1, &mut pp2] {
            pp.push_chunk(0, chunk(&[(1, 1.0), (9, 2.0), (15, 3.0)]));
            pp.push_chunk(0, chunk(&[(0, 4.0), (9, 5.0)]));
            pp.push_chunk(1, chunk(&[(7, 6.0)]));
        }
        let (c1, s1) = merge(pp1, MergeKind::Streaming);
        let (c2, s2) = merge(pp2, MergeKind::SortBased);
        assert_eq!(c1, c2);
        assert_eq!(s1.collisions, s2.collisions);
        assert_eq!(s1.output_entries, s2.output_entries);
    }

    #[test]
    fn blocked_agrees_with_streaming_bitwise() {
        let mut pp1 = PartialProducts::new(2, 16);
        let mut pp2 = PartialProducts::new(2, 16);
        for pp in [&mut pp1, &mut pp2] {
            pp.push_chunk(0, chunk(&[(1, 0.1), (9, 2.0), (15, 3.0)]));
            pp.push_chunk(0, chunk(&[(0, 4.0), (9, 0.2)]));
            pp.push_chunk(0, chunk(&[(9, 0.7)]));
            pp.push_chunk(1, chunk(&[(7, 6.0)]));
        }
        let (c1, s1) = merge(pp1, MergeKind::Streaming);
        let (c2, s2) = merge(pp2, MergeKind::Blocked);
        // Exact equality: collision accumulation order is pinned to chunk
        // index in both variants, so even 0.1 + 0.2-style non-associative
        // sums come out bit-identical.
        assert_eq!(c1, c2);
        assert_eq!(s1.collisions, s2.collisions);
        assert_eq!(s1.output_entries, s2.output_entries);
        assert_eq!(s1.bytes_read, s2.bytes_read);
        assert_eq!(s1.bytes_written, s2.bytes_written);
    }

    #[test]
    fn blocked_handles_columns_spanning_many_blocks() {
        // Columns straddle 3 accumulator blocks with a collision in each.
        let far = |b: u32, off: u32| b * MERGE_BLOCK_COLS as u32 + off;
        let mut pp = PartialProducts::new(1, far(3, 0));
        pp.push_chunk(0, chunk(&[(far(0, 1), 1.0), (far(1, 5), 2.0), (far(2, 9), 3.0)]));
        pp.push_chunk(0, chunk(&[(far(0, 1), 4.0), (far(1, 5), 8.0), (far(2, 9), 16.0)]));
        let (c, stats) = merge(pp, MergeKind::Blocked);
        assert_eq!(c.row(0).0, &[far(0, 1), far(1, 5), far(2, 9)]);
        assert_eq!(c.row(0).1, &[5.0, 10.0, 19.0]);
        assert_eq!(stats.collisions, 3);
        assert_eq!(stats.output_entries, 3);
    }

    #[test]
    fn blocked_single_chunk_fast_path() {
        let mut pp = PartialProducts::new(1, 8);
        pp.push_chunk(0, chunk(&[(2, 1.5), (5, 2.5)]));
        let (c, stats) = merge(pp, MergeKind::Blocked);
        assert_eq!(c.row(0).0, &[2, 5]);
        assert_eq!(c.row(0).1, &[1.5, 2.5]);
        assert_eq!(stats.bytes_read, 24);
        assert_eq!(stats.output_entries, 2);
    }

    #[test]
    fn empty_rows_produce_empty_result_rows() {
        for kind in [MergeKind::Streaming, MergeKind::SortBased, MergeKind::Blocked] {
            let pp = PartialProducts::new(3, 3);
            let (c, stats) = merge(pp, kind);
            assert_eq!(c.nnz(), 0);
            assert_eq!(c.nrows(), 3);
            assert_eq!(stats.output_entries, 0);
        }
    }

    #[test]
    fn parallel_merge_matches_sequential() {
        let a = Dense::from_row_major(
            4,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 3.0, 0.0, 1.0, //
                4.0, 0.0, 0.0, 5.0, //
                0.0, 6.0, 7.0, 0.0,
            ],
        )
        .to_csr();
        let a_cc: Csc = a.to_csc();
        let (pp1, _) = multiply(&a_cc, &a).unwrap();
        let (pp2, _) = multiply(&a_cc, &a).unwrap();
        let (c_seq, s_seq) = merge(pp1, MergeKind::Streaming);
        let (c_par, s_par) = merge_parallel(pp2, MergeKind::Streaming, 3);
        assert_eq!(c_seq, c_par);
        assert_eq!(s_seq.output_entries, s_par.output_entries);
        let want = ops::spgemm_reference(&a, &a).unwrap();
        assert!(c_seq.approx_eq(&want, 1e-12));
    }

    #[test]
    fn arena_merge_matches_chunk_list_merge() {
        let a = outerspace_gen::uniform::matrix(64, 64, 600, 17);
        let b = outerspace_gen::uniform::matrix(64, 64, 600, 18);
        let a_cc: Csc = a.to_csc();
        for kind in [MergeKind::Streaming, MergeKind::SortBased, MergeKind::Blocked] {
            let (pp, _) = multiply(&a_cc, &b).unwrap();
            let (ap, _) = multiply_arena(&a_cc, &b).unwrap();
            let (c_list, s_list) = merge(pp, kind);
            let (c_arena, s_arena) = merge_arena(&ap, kind);
            assert_eq!(c_list, c_arena, "{kind:?}");
            assert_eq!(s_list, s_arena, "{kind:?}");
            let (c_arena_par, s_par) = merge_arena_parallel(&ap, kind, 3);
            assert_eq!(c_list, c_arena_par, "{kind:?} parallel");
            assert_eq!(s_list.output_entries, s_par.output_entries, "{kind:?} parallel");
        }
    }

    #[test]
    fn merge_stats_byte_accounting() {
        let mut pp = PartialProducts::new(1, 4);
        pp.push_chunk(0, chunk(&[(0, 1.0), (1, 2.0)]));
        let (_, stats) = merge(pp, MergeKind::Streaming);
        assert_eq!(stats.bytes_read, 24);
        assert_eq!(stats.bytes_written, 24);
    }

    #[test]
    fn capacity_hint_caps_at_dense_and_saturates() {
        // Intermediate smaller than dense: the intermediate bounds output.
        assert_eq!(output_capacity_hint(100, 64, 64), 100);
        // Collision-heavy intermediate larger than dense: dense bounds it.
        assert_eq!(output_capacity_hint(10_000, 8, 8), 64);
        // u32::MAX² must not overflow usize arithmetic on any target.
        let h = output_capacity_hint(usize::MAX, Index::MAX, Index::MAX);
        assert_eq!(h, (Index::MAX as usize).saturating_mul(Index::MAX as usize));
    }

    #[test]
    fn worst_offender_many_tiny_chunks_single_row() {
        // The re-allocation worst case found in the audit: one row fed by
        // thousands of one-entry chunks. Before the capacity hint, `merge`
        // grew its output arrays through ~log2(n) full copies; the hint
        // (total_entries = 4000, under the dense cap) sizes them once.
        let n_chunks = 4000u32;
        let mut pp = PartialProducts::new(1, n_chunks);
        for c in 0..n_chunks {
            pp.push_chunk(0, chunk(&[(c, 1.0)]));
        }
        assert_eq!(
            output_capacity_hint(pp.total_entries(), pp.nrows(), pp.ncols()),
            n_chunks as usize
        );
        for kind in [MergeKind::Streaming, MergeKind::SortBased, MergeKind::Blocked] {
            let mut pp = PartialProducts::new(1, n_chunks);
            for c in 0..n_chunks {
                pp.push_chunk(0, chunk(&[(c, 1.0)]));
            }
            let (c, stats) = merge(pp, kind);
            assert_eq!(c.nnz(), n_chunks as usize, "{kind:?}");
            assert_eq!(stats.output_entries, u64::from(n_chunks), "{kind:?}");
            assert_eq!(stats.collisions, 0, "{kind:?}");
        }
    }
}
