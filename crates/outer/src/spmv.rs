//! Outer-product sparse matrix-vector multiplication (§5.6, Table 5).
//!
//! `y = A × x` decomposes into `y = Σ_k x_k · col_k(A)`: only the columns of
//! `A` whose index matches a non-zero of `x` are ever fetched, so the memory
//! traffic scales with `nnz(x)` — the property behind Table 5's linear
//! speedup scaling in vector density. Partial products need no sorting
//! (each column scatters to disjoint-or-accumulating output positions), so
//! the merge phase degenerates to accumulation without a scratchpad.

use outerspace_sparse::{Csc, Index, SparseError, SparseVector, Value};

/// Counters captured during an outer-product SpMV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpmvStats {
    /// Columns of `A` fetched (= non-zeros of `x`).
    pub columns_touched: u64,
    /// Elementary multiply-accumulates performed.
    pub macs: u64,
    /// Bytes read: matrix columns + vector entries, 12 B each.
    pub bytes_read: u64,
    /// Bytes written to the output vector (12 B per output non-zero).
    pub bytes_written: u64,
}

/// Computes `y = A × x` for a sparse vector `x`, returning a sparse result.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `x.len != a.ncols()`.
///
/// # Example
///
/// ```
/// use outerspace_sparse::Csr;
/// use outerspace_sparse::SparseVector;
/// use outerspace_outer::spmv;
///
/// # fn main() -> Result<(), outerspace_sparse::SparseError> {
/// let a = Csr::identity(3).to_csc();
/// let x = SparseVector { len: 3, indices: vec![1], values: vec![5.0] };
/// let (y, stats) = spmv(&a, &x)?;
/// assert_eq!(y.indices, vec![1]);
/// assert_eq!(y.values, vec![5.0]);
/// assert_eq!(stats.columns_touched, 1);
/// # Ok(())
/// # }
/// ```
pub fn spmv(a: &Csc, x: &SparseVector) -> Result<(SparseVector, SpmvStats), SparseError> {
    outerspace_sparse::ops::check_spmv_dims((a.nrows(), a.ncols()), x.len)?;
    let mut stats = SpmvStats::default();
    let mut acc = vec![0.0 as Value; a.nrows() as usize];
    let mut touched: Vec<Index> = Vec::new();
    for (&k, &xk) in x.indices.iter().zip(&x.values) {
        stats.columns_touched += 1;
        stats.bytes_read += 12; // the vector entry
        let (rows, vals) = a.col(k);
        stats.bytes_read += 12 * rows.len() as u64;
        stats.macs += rows.len() as u64;
        for (&r, &v) in rows.iter().zip(vals) {
            if acc[r as usize] == 0.0 {
                touched.push(r);
            }
            acc[r as usize] += xk * v;
        }
    }
    touched.sort_unstable();
    touched.dedup();
    let mut indices = Vec::with_capacity(touched.len());
    let mut values = Vec::with_capacity(touched.len());
    for &r in &touched {
        indices.push(r);
        values.push(acc[r as usize]);
    }
    stats.bytes_written = 12 * indices.len() as u64;
    Ok((SparseVector { len: a.nrows(), indices, values }, stats))
}

/// Computes `y = A × x` for a dense vector `x`, returning a dense result.
///
/// Equivalent to [`spmv`] with a fully dense input; provided because Table 5
/// sweeps the vector density up to `r = 1.0`.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `x.len() != a.ncols()`.
pub fn spmv_dense(a: &Csc, x: &[Value]) -> Result<(Vec<Value>, SpmvStats), SparseError> {
    outerspace_sparse::ops::check_spmv_dims((a.nrows(), a.ncols()), x.len() as Index)?;
    let mut stats = SpmvStats::default();
    let mut y = vec![0.0 as Value; a.nrows() as usize];
    for (k, &xk) in x.iter().enumerate() {
        if xk == 0.0 {
            continue;
        }
        stats.columns_touched += 1;
        let (rows, vals) = a.col(k as Index);
        stats.bytes_read += 12 * (rows.len() as u64 + 1);
        stats.macs += rows.len() as u64;
        for (&r, &v) in rows.iter().zip(vals) {
            y[r as usize] += xk * v;
        }
    }
    stats.bytes_written = 12 * y.iter().filter(|&&v| v != 0.0).count() as u64;
    Ok((y, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{uniform, vector};
    use outerspace_sparse::ops;

    #[test]
    fn sparse_spmv_matches_reference() {
        let a = uniform::matrix(64, 64, 512, 1);
        let x = vector::sparse(64, 0.25, 2);
        let (y, stats) = spmv(&a.to_csc(), &x).unwrap();
        let want = ops::spmv_reference(&a, &x.to_dense()).unwrap();
        let dense_y = y.to_dense();
        for i in 0..64 {
            assert!((dense_y[i] - want[i]).abs() < 1e-9, "row {i}");
        }
        assert_eq!(stats.columns_touched as usize, x.nnz());
    }

    #[test]
    fn dense_spmv_matches_reference() {
        let a = uniform::matrix(48, 48, 300, 5);
        let x = vector::dense(48, 6);
        let (y, _) = spmv_dense(&a.to_csc(), &x).unwrap();
        let want = ops::spmv_reference(&a, &x).unwrap();
        for i in 0..48 {
            assert!((y[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn traffic_scales_with_vector_density() {
        let a = uniform::matrix(256, 256, 4096, 7).to_csc();
        let x_sparse = vector::sparse(256, 0.1, 8);
        let x_dense = vector::sparse(256, 1.0, 8);
        let (_, s1) = spmv(&a, &x_sparse).unwrap();
        let (_, s10) = spmv(&a, &x_dense).unwrap();
        let ratio = s10.bytes_read as f64 / s1.bytes_read as f64;
        assert!((5.0..20.0).contains(&ratio), "traffic ratio {ratio}");
    }

    #[test]
    fn empty_vector_reads_nothing() {
        let a = uniform::matrix(32, 32, 128, 9).to_csc();
        let x = vector::sparse(32, 0.0, 1);
        let (y, stats) = spmv(&a, &x).unwrap();
        assert_eq!(y.nnz(), 0);
        assert_eq!(stats.bytes_read, 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = uniform::matrix(8, 8, 16, 1).to_csc();
        let x = vector::sparse(9, 0.5, 1);
        assert!(spmv(&a, &x).is_err());
        assert!(spmv_dense(&a, &[0.0; 9]).is_err());
    }

    #[test]
    fn cancellation_keeps_explicit_zero() {
        // If accumulation cancels to exactly zero the entry is still
        // reported (touched positions are pattern, not value, driven).
        let a = outerspace_sparse::Csr::new(
            1,
            2,
            vec![0, 2],
            vec![0, 1],
            vec![1.0, -1.0],
        )
        .unwrap()
        .to_csc();
        let x = SparseVector { len: 2, indices: vec![0, 1], values: vec![1.0, 1.0] };
        let (y, _) = spmv(&a, &x).unwrap();
        assert_eq!(y.indices, vec![0]);
        assert_eq!(y.values, vec![0.0]);
    }
}
