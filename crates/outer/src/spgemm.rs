//! Top-level outer-product SpGEMM drivers.

use outerspace_sparse::{ops, Csc, Csr, SparseError};

use crate::arena::{multiply_arena, multiply_arena_parallel};
use crate::chunks::{MultiplyStats, PartialProducts};
use crate::convert::{csr_to_csc_via_outer, ConversionStats};
use crate::merge::{
    merge, merge_arena, merge_arena_parallel, merge_parallel, MergeKind, MergeStats,
};
use crate::multiply::{multiply, multiply_parallel};

/// Everything measured during one outer-product SpGEMM run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpGemmReport {
    /// Format-conversion counters (zero when `A` was already CC).
    pub conversion: ConversionStats,
    /// Multiply-phase counters.
    pub multiply: MultiplyStats,
    /// Merge-phase counters.
    pub merge: MergeStats,
    /// Peak bytes held by the intermediate partial-product structure.
    pub intermediate_bytes: usize,
}

/// Computes `C = A × B` with the outer-product algorithm, sequentially.
///
/// Inputs and output are CR (CSR); `A` is converted to CC internally via the
/// paper's `I_CC × A_CR` scheme, and that cost is included in the returned
/// report by [`spgemm_with_stats`]. This mirrors the paper's evaluation
/// protocol, which charges format conversion to OuterSPACE "to model the
/// worst-case scenario" (§7.1).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Example
///
/// ```
/// use outerspace_sparse::{ops, Csr};
/// use outerspace_outer::spgemm;
///
/// # fn main() -> Result<(), outerspace_sparse::SparseError> {
/// let a = Csr::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0, 3.0])?;
/// let c = spgemm(&a, &a)?;
/// assert!(c.approx_eq(&ops::spgemm_reference(&a, &a)?, 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn spgemm(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    Ok(spgemm_with_stats(a, b, MergeKind::Streaming)?.0)
}

/// [`spgemm`] with full phase statistics and a selectable merge algorithm.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_with_stats(
    a: &Csr,
    b: &Csr,
    kind: MergeKind,
) -> Result<(Csr, SpGemmReport), SparseError> {
    // Guard before the conversion phase so malformed operands are rejected
    // without doing (or charging) any work.
    ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    let (a_cc, conversion) = csr_to_csc_via_outer(a);
    let (pp, mul) = multiply(&a_cc, b)?;
    let intermediate_bytes = pp.memory_footprint_bytes();
    let (c, mrg) = merge(pp, kind);
    Ok((c, SpGemmReport { conversion, multiply: mul, merge: mrg, intermediate_bytes }))
}

/// [`spgemm_with_stats`] on the arena fast path: the multiply phase writes
/// scaled chunks straight into a flat arena (six allocations total instead
/// of one per chunk) and the chosen merge reads slice pairs out of it.
/// Produces results bitwise-identical to the chunk-list pipeline.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_arena(
    a: &Csr,
    b: &Csr,
    kind: MergeKind,
) -> Result<(Csr, SpGemmReport), SparseError> {
    ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    let (a_cc, conversion) = csr_to_csc_via_outer(a);
    let (ap, mul) = multiply_arena(&a_cc, b)?;
    let intermediate_bytes = ap.memory_footprint_bytes();
    let (c, mrg) = merge_arena(&ap, kind);
    Ok((c, SpGemmReport { conversion, multiply: mul, merge: mrg, intermediate_bytes }))
}

/// The full software fast path: arena multiply + cache-blocked merge
/// ([`MergeKind::Blocked`]). Shorthand for
/// `spgemm_arena(a, b, MergeKind::Blocked)`.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_blocked(a: &Csr, b: &Csr) -> Result<(Csr, SpGemmReport), SparseError> {
    spgemm_arena(a, b, MergeKind::Blocked)
}

/// The parallel software fast path: work-stealing arena multiply +
/// work-stealing blocked merge. Deterministic — the result is
/// byte-identical to [`spgemm_blocked`] for every thread count.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn spgemm_arena_parallel(
    a: &Csr,
    b: &Csr,
    n_threads: usize,
) -> Result<(Csr, SpGemmReport), SparseError> {
    ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    let (a_cc, conversion) = csr_to_csc_via_outer(a);
    let (ap, mul) = multiply_arena_parallel(&a_cc, b, n_threads)?;
    let intermediate_bytes = ap.memory_footprint_bytes();
    let (c, mrg) = merge_arena_parallel(&ap, MergeKind::Blocked, n_threads);
    Ok((c, SpGemmReport { conversion, multiply: mul, merge: mrg, intermediate_bytes }))
}

/// Computes `C = A × B` with `n_threads` work-stealing workers in both phases.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn spgemm_parallel(
    a: &Csr,
    b: &Csr,
    n_threads: usize,
) -> Result<(Csr, SpGemmReport), SparseError> {
    ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    let (a_cc, conversion) = csr_to_csc_via_outer(a);
    let (pp, mul) = multiply_parallel(&a_cc, b, n_threads)?;
    let intermediate_bytes = pp.memory_footprint_bytes();
    let (c, mrg) = merge_parallel(pp, MergeKind::Streaming, n_threads);
    Ok((c, SpGemmReport { conversion, multiply: mul, merge: mrg, intermediate_bytes }))
}

/// Computes `C = A × B` with the result in CC format (§4.2: "the hardware
/// can be programmed to produce the resultant matrix in either the CR or the
/// CC format").
///
/// CC mode merges per result *column*: it is the CR-mode pipeline applied to
/// `Cᵀ = Bᵀ × Aᵀ` with the transposed operand roles, then relabelled — the
/// partial-product structure is identical with `R_i` pointers replaced by
/// `C_i` pointers (Fig. 2, bottom right).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_cc(a: &Csr, b: &Csr) -> Result<Csc, SparseError> {
    // Guard on the *untransposed* operands so the error reports the shapes
    // the caller passed, not the relabelled ones fed to `multiply`.
    ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    // Bᵀ in CC format is just B's arrays relabelled; same for Aᵀ in CR.
    let bt_cc: Csc = b.clone().into_csc_transposed();
    let at_cr: Csr = a.clone().to_csc().into_csr_transposed();
    let (pp, _) = multiply(&bt_cc, &at_cr)?;
    let (ct, _) = merge(pp, MergeKind::Streaming);
    Ok(ct.into_csc_transposed())
}

/// Convenience: run the multiply phase only and return the intermediate
/// structure (used by the simulator's trace generation and by benchmarks
/// that time the phases separately, as Figs. 3 and 4 do).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn multiply_only(a: &Csc, b: &Csr) -> Result<PartialProducts, SparseError> {
    Ok(multiply(a, b)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::ops;

    fn random_pair(n: u32, nnz: usize, seed: u64) -> (Csr, Csr) {
        (
            outerspace_gen::uniform::matrix(n, n, nnz, seed),
            outerspace_gen::uniform::matrix(n, n, nnz, seed + 1),
        )
    }

    #[test]
    fn matches_reference_on_random_matrices() {
        for seed in 0..5 {
            let (a, b) = random_pair(64, 400, seed);
            let c = spgemm(&a, &b).unwrap();
            let want = ops::spgemm_reference(&a, &b).unwrap();
            assert!(c.approx_eq(&want, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let (a, b) = random_pair(128, 1500, 9);
        let (c, report) = spgemm_parallel(&a, &b, 4).unwrap();
        let want = ops::spgemm_reference(&a, &b).unwrap();
        assert!(c.approx_eq(&want, 1e-9));
        assert!(report.multiply.elementary_products > 0);
        assert!(report.merge.output_entries as usize == c.nnz());
    }

    #[test]
    fn rectangular_shapes() {
        let a = outerspace_gen::uniform::matrix(32, 64, 300, 1);
        let b = outerspace_gen::uniform::matrix(64, 16, 300, 2);
        let c = spgemm(&a, &b).unwrap();
        assert_eq!(c.nrows(), 32);
        assert_eq!(c.ncols(), 16);
        let want = ops::spgemm_reference(&a, &b).unwrap();
        assert!(c.approx_eq(&want, 1e-9));
    }

    #[test]
    fn cc_mode_matches_cr_mode() {
        let (a, b) = random_pair(48, 300, 21);
        let cr = spgemm(&a, &b).unwrap();
        let cc = spgemm_cc(&a, &b).unwrap();
        assert!(cc.to_csr().approx_eq(&cr, 1e-9));
    }

    #[test]
    fn report_flop_accounting_consistent() {
        let (a, b) = random_pair(64, 500, 33);
        let (_, report) = spgemm_with_stats(&a, &b, MergeKind::Streaming).unwrap();
        let flops = ops::spgemm_flops(&a, &b).unwrap();
        assert_eq!(report.multiply.elementary_products * 2, flops);
        // Merge reads exactly what multiply wrote.
        assert_eq!(report.merge.bytes_read, report.multiply.bytes_written);
        // Output entries = products - collisions.
        assert_eq!(
            report.merge.output_entries,
            report.multiply.elementary_products - report.merge.collisions
        );
    }

    #[test]
    fn arena_paths_are_bitwise_identical_to_chunk_list_path() {
        let (a, b) = random_pair(96, 1000, 55);
        let (c_list, r_list) = spgemm_with_stats(&a, &b, MergeKind::Streaming).unwrap();
        let (c_arena, r_arena) = spgemm_arena(&a, &b, MergeKind::Streaming).unwrap();
        let (c_blocked, _) = spgemm_blocked(&a, &b).unwrap();
        let (c_par, _) = spgemm_arena_parallel(&a, &b, 4).unwrap();
        assert_eq!(c_list, c_arena);
        assert_eq!(c_list, c_blocked);
        assert_eq!(c_list, c_par);
        assert_eq!(r_list.multiply, r_arena.multiply);
        assert_eq!(r_list.merge, r_arena.merge);
        // The arena drops the per-chunk Vec bookkeeping, so its recorded
        // intermediate footprint must come in under the chunk lists'.
        assert!(r_arena.intermediate_bytes < r_list.intermediate_bytes);
    }

    #[test]
    fn arena_report_identities_hold() {
        let (a, b) = random_pair(64, 500, 77);
        for report in [
            spgemm_blocked(&a, &b).unwrap().1,
            spgemm_arena_parallel(&a, &b, 3).unwrap().1,
        ] {
            assert_eq!(report.merge.bytes_read, report.multiply.bytes_written);
            assert_eq!(
                report.merge.output_entries,
                report.multiply.elementary_products - report.merge.collisions
            );
        }
    }

    #[test]
    fn sort_based_merge_gives_same_result() {
        let (a, b) = random_pair(64, 500, 44);
        let (c1, _) = spgemm_with_stats(&a, &b, MergeKind::Streaming).unwrap();
        let (c2, _) = spgemm_with_stats(&a, &b, MergeKind::SortBased).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn empty_times_anything_is_empty() {
        let a = Csr::zero(8, 8);
        let b = outerspace_gen::uniform::matrix(8, 8, 16, 5);
        assert_eq!(spgemm(&a, &b).unwrap().nnz(), 0);
        assert_eq!(spgemm(&b, &a).unwrap().nnz(), 0);
    }
}
