//! The intermediate partial-product structure of Fig. 2.
//!
//! The multiply phase emits, for every result row `i`, a list of *chunks* —
//! each chunk is the contribution of one outer product to that row: the
//! paired row-of-`B` scaled by one non-zero of the column-of-`A`. Chunks are
//! contiguous runs of column-index/value pairs; the per-row list corresponds
//! to the paper's linked list hanging off the row pointer `R_i`. Because
//! each producer appends whole chunks, processing units never synchronize on
//! element granularity — the property OuterSPACE exploits for lock-free
//! multiply-phase writes.

use outerspace_sparse::{Index, Value};

/// One outer product's contribution to one result row: a contiguous run of
/// column-index/value pairs, already sorted by column (it inherits the order
/// of the source row-of-`B`).
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Column indices, strictly increasing.
    pub cols: Vec<Index>,
    /// Values, parallel to `cols`.
    pub vals: Vec<Value>,
}

impl Chunk {
    /// Number of entries in the chunk.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the chunk holds no entries.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// The multiply phase's output: for every result row, the list of chunks to
/// be merged (the paper's `R_i` linked lists, Fig. 2).
///
/// In CC mode the same structure is indexed by result *column*; the merge
/// code is agnostic.
#[derive(Debug, Clone, Default)]
pub struct PartialProducts {
    /// `rows[i]` holds the chunks contributing to result row `i`.
    rows: Vec<Vec<Chunk>>,
    /// Number of columns of the result (bound for merge output).
    ncols: Index,
}

impl PartialProducts {
    /// Creates an empty structure for an `nrows` × `ncols` result.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        PartialProducts { rows: vec![Vec::new(); nrows as usize], ncols }
    }

    /// Number of result rows.
    pub fn nrows(&self) -> Index {
        self.rows.len() as Index
    }

    /// Number of result columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Appends a chunk to row `i`'s list.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn push_chunk(&mut self, i: Index, chunk: Chunk) {
        self.rows[i as usize].push(chunk);
    }

    /// The chunk list of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_chunks(&self, i: Index) -> &[Chunk] {
        &self.rows[i as usize]
    }

    /// Takes ownership of row `i`'s chunk list, leaving it empty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn take_row(&mut self, i: Index) -> Vec<Chunk> {
        std::mem::take(&mut self.rows[i as usize])
    }

    /// Total stored elementary products across all chunks.
    pub fn total_entries(&self) -> usize {
        self.rows.iter().flat_map(|r| r.iter().map(Chunk::len)).sum()
    }

    /// Total number of chunks (the paper's linked-list node count).
    pub fn total_chunks(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Approximate memory footprint in bytes, counting 12 B per stored
    /// element (8 B value + 4 B index) plus 16 B of chunk bookkeeping —
    /// the `α·N + β·N²·r + γ·N³·r²` structure of §5.5 made concrete.
    pub fn memory_footprint_bytes(&self) -> usize {
        let row_ptrs = self.rows.len() * 8;
        let chunk_overhead = self.total_chunks() * 16;
        let elements = self.total_entries() * 12;
        row_ptrs + chunk_overhead + elements
    }
}

/// Counters captured during a multiply phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiplyStats {
    /// Elementary products `a_ki · b_ij` performed (one multiply flop each).
    pub elementary_products: u64,
    /// Chunks emitted.
    pub chunks: u64,
    /// Outer products with both a non-empty column-of-A and row-of-B.
    pub nonempty_outer_products: u64,
    /// Bytes read from the operand matrices (12 B per non-zero touched,
    /// counting the reuse-free streaming the algorithm guarantees).
    pub bytes_read: u64,
    /// Bytes written to the intermediate structure (12 B per product).
    pub bytes_written: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_take() {
        let mut pp = PartialProducts::new(3, 4);
        pp.push_chunk(1, Chunk { cols: vec![0, 2], vals: vec![1.0, 2.0] });
        pp.push_chunk(1, Chunk { cols: vec![1], vals: vec![3.0] });
        assert_eq!(pp.row_chunks(1).len(), 2);
        assert_eq!(pp.total_entries(), 3);
        assert_eq!(pp.total_chunks(), 2);
        let taken = pp.take_row(1);
        assert_eq!(taken.len(), 2);
        assert!(pp.row_chunks(1).is_empty());
    }

    #[test]
    fn footprint_accounting() {
        let mut pp = PartialProducts::new(2, 2);
        pp.push_chunk(0, Chunk { cols: vec![0], vals: vec![1.0] });
        // 2 row ptrs * 8 + 1 chunk * 16 + 1 element * 12 = 44.
        assert_eq!(pp.memory_footprint_bytes(), 44);
    }

    #[test]
    fn empty_chunk_properties() {
        let c = Chunk { cols: vec![], vals: vec![] };
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
