//! SpArch-analog functional path: condensed outer-product multiply plus a
//! Huffman-scheduled merge tree.
//!
//! SpArch (Zhang et al., HPCA 2020) is the direct follow-on to OuterSPACE.
//! It keeps the outer-product decomposition but removes the linked-list
//! intermediate: matrix `A` is *condensed* — each row's non-zeros are pushed
//! left, so condensed column `k` holds the `k`-th non-zero of every row —
//! and each condensed column streams one sorted partial-product matrix into
//! a comparator-array merge tree. A Huffman-style scheduler merges the
//! smallest partials first, so when the partial count exceeds the tree's
//! arity only the cheapest streams round-trip DRAM.
//!
//! This module is the *functional* model: [`condense`] builds the condensed
//! representation, [`spgemm_sparch`] computes the exact product through the
//! condensed multiply + merge-tree pipeline, and [`SparchPlan`] records the
//! stream sizes and the merge schedule so the timing model
//! (`outerspace_sim::phases::sparch`) replays the very same dataflow.

use outerspace_sparse::{ops, Csr, Index, SparseError, Value};

/// Merge-tree arity used when no configuration is in play (the paper's
/// 64-way comparator array).
pub const DEFAULT_MERGE_WAYS: usize = 64;

/// One non-zero of the condensed matrix, remembering where it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondensedEntry {
    /// Original row index (also the result row it contributes to).
    pub row: Index,
    /// Original column index (selects the row-of-B it multiplies).
    pub col: Index,
    /// The non-zero value.
    pub val: Value,
}

/// The condensed form of `A`: column `k` holds the `k`-th non-zero of every
/// row that has more than `k` non-zeros, ordered by row. Condensing never
/// reorders a row's non-zeros, so each condensed column is sorted by `row`
/// and holds at most one entry per row.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedA {
    cols: Vec<Vec<CondensedEntry>>,
    nrows: Index,
    ncols: Index,
}

impl CondensedA {
    /// Number of condensed columns (the maximum row population of `A`).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Condensed column `k`, sorted by original row index.
    pub fn col(&self, k: usize) -> &[CondensedEntry] {
        &self.cols[k]
    }

    /// Rows of the original matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Columns of the original matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Total non-zeros over all condensed columns (= `a.nnz()`).
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }
}

/// Condenses `A`: pushes every row's non-zeros leftward. Empty rows simply
/// contribute to no condensed column; the condensed width is the maximum
/// row population.
pub fn condense(a: &Csr) -> CondensedA {
    let width = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap_or(0);
    let mut cols: Vec<Vec<CondensedEntry>> = vec![Vec::new(); width];
    for r in 0..a.nrows() {
        let (rc, rv) = a.row(r);
        for (k, (&c, &v)) in rc.iter().zip(rv).enumerate() {
            cols[k].push(CondensedEntry { row: r, col: c, val: v });
        }
    }
    CondensedA { cols, nrows: a.nrows(), ncols: a.ncols() }
}

/// One scheduled merge step: up to `ways` input streams combine into one.
#[derive(Debug, Clone, PartialEq)]
pub struct SparchMergeOp {
    /// Element count of every input stream, in merge order.
    pub input_elems: Vec<u64>,
    /// Elements surviving the merge (collisions are summed away).
    pub out_elems: u64,
}

impl SparchMergeOp {
    /// Index collisions resolved by this op (adder activations).
    pub fn collisions(&self) -> u64 {
        self.input_elems.iter().sum::<u64>().saturating_sub(self.out_elems)
    }
}

/// The dataflow record the timing model replays: per-leaf stream sizes and
/// the Huffman merge schedule over them.
#[derive(Debug, Clone, PartialEq)]
pub struct SparchPlan {
    /// Condensed width of `A` (number of leaf partial matrices).
    pub condensed_width: usize,
    /// Elements of each leaf partial-product stream, in condensed-column
    /// order.
    pub leaf_elems: Vec<u64>,
    /// True when the leaf count exceeds the tree arity: every partial
    /// round-trips DRAM instead of streaming straight through the tree.
    pub spilled: bool,
    /// Merge steps in execution order (smallest-first Huffman schedule).
    pub ops: Vec<SparchMergeOp>,
    /// Non-zeros of the final product.
    pub result_nnz: u64,
}

impl SparchPlan {
    /// Total elementary products (multiplier activations).
    pub fn total_products(&self) -> u64 {
        self.leaf_elems.iter().sum()
    }

    /// Total collisions over the whole schedule.
    pub fn total_collisions(&self) -> u64 {
        self.ops.iter().map(SparchMergeOp::collisions).sum()
    }
}

/// A sorted partial-product stream: `(row, col, value)` in `(row, col)`
/// order with unique keys.
type Stream = Vec<(Index, Index, Value)>;

/// Generates the leaf partial-product stream of condensed column `k`: each
/// entry `(r, j, v)` scales the `j`-th row of `B`. At most one entry per
/// row, so the concatenation is fully `(row, col)`-sorted.
fn leaf_stream(col: &[CondensedEntry], b: &Csr) -> Stream {
    let mut out = Vec::new();
    for e in col {
        let (bc, bv) = b.row(e.col);
        out.reserve(bc.len());
        for (&c, &v) in bc.iter().zip(bv) {
            out.push((e.row, c, e.val * v));
        }
    }
    out
}

/// Merges up to `ways` sorted streams, summing colliding `(row, col)` keys
/// in stream order (deterministic for every input).
fn merge_streams(streams: &[Stream]) -> Stream {
    let mut heads = vec![0usize; streams.len()];
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out: Stream = Vec::with_capacity(total);
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (s, stream) in streams.iter().enumerate() {
            if let Some(&(r, c, _)) = stream.get(heads[s]) {
                let key = (r as u64) << 32 | c as u64;
                if best.map_or(true, |(bk, _)| key < bk) {
                    best = Some((key, s));
                }
            }
        }
        let Some((key, _)) = best else { break };
        let mut acc = 0.0;
        for (s, stream) in streams.iter().enumerate() {
            if let Some(&(r, c, v)) = stream.get(heads[s]) {
                if (r as u64) << 32 | c as u64 == key {
                    acc += v;
                    heads[s] += 1;
                }
            }
        }
        out.push(((key >> 32) as Index, (key & 0xffff_ffff) as Index, acc));
    }
    out
}

/// Builds the CR product from the final merged stream.
fn stream_to_csr(stream: Stream, nrows: Index, ncols: Index) -> Csr {
    let mut row_ptr = vec![0usize; nrows as usize + 1];
    let mut cols = Vec::with_capacity(stream.len());
    let mut vals = Vec::with_capacity(stream.len());
    for &(r, c, v) in &stream {
        row_ptr[r as usize + 1] += 1;
        cols.push(c);
        vals.push(v);
    }
    for i in 0..nrows as usize {
        row_ptr[i + 1] += row_ptr[i];
    }
    Csr::from_raw_parts_unchecked(nrows, ncols, row_ptr, cols, vals)
}

/// Computes `C = A × B` through the SpArch pipeline with a `ways`-ary merge
/// tree, returning the product and the dataflow plan the timing model
/// replays.
///
/// The scheduler is the Huffman policy: while more than one stream remains,
/// merge the `ways` smallest (ties broken by creation order). When every
/// leaf fits the tree at once (`width ≤ ways`) a single pass merges them
/// all and nothing spills.
///
/// # Errors
///
/// [`SparseError::DimMismatch`] when `a.ncols() != b.nrows()`.
pub fn spgemm_sparch_with_plan(
    a: &Csr,
    b: &Csr,
    ways: usize,
) -> Result<(Csr, SparchPlan), SparseError> {
    ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    let ways = ways.max(2);
    let condensed = condense(a);
    let mut streams: Vec<Stream> =
        (0..condensed.width()).map(|k| leaf_stream(condensed.col(k), b)).collect();
    let leaf_elems: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
    let spilled = streams.len() > ways;

    // Work list of (elements, creation order, stream); the Huffman policy
    // repeatedly merges the `ways` smallest. Selection sorts by (len, seq)
    // so the schedule is deterministic.
    let mut seq = streams.len();
    let mut live: Vec<(usize, Stream)> = streams.drain(..).enumerate().collect();
    let mut ops = Vec::new();
    while live.len() > 1 {
        live.sort_by_key(|(s, st)| (st.len(), *s));
        let take = ways.min(live.len());
        let picked: Vec<(usize, Stream)> = live.drain(..take).collect();
        let inputs: Vec<Stream> = picked.into_iter().map(|(_, st)| st).collect();
        let merged = merge_streams(&inputs);
        ops.push(SparchMergeOp {
            input_elems: inputs.iter().map(|s| s.len() as u64).collect(),
            out_elems: merged.len() as u64,
        });
        live.push((seq, merged));
        seq += 1;
    }
    let final_stream = live.pop().map(|(_, st)| st).unwrap_or_default();
    let result_nnz = final_stream.len() as u64;
    let c = stream_to_csr(final_stream, a.nrows(), b.ncols());
    let plan = SparchPlan {
        condensed_width: leaf_elems.len(),
        leaf_elems,
        spilled,
        ops,
        result_nnz,
    };
    Ok((c, plan))
}

/// [`spgemm_sparch_with_plan`] at the paper's default 64-way tree,
/// discarding the plan.
///
/// # Errors
///
/// [`SparseError::DimMismatch`] when `a.ncols() != b.nrows()`.
pub fn spgemm_sparch(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    spgemm_sparch_with_plan(a, b, DEFAULT_MERGE_WAYS).map(|(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    #[test]
    fn condense_preserves_every_nonzero() {
        let a = uniform::matrix(32, 32, 150, 3);
        let cd = condense(&a);
        assert_eq!(cd.nnz(), a.nnz());
        let mut triplets: Vec<(Index, Index, u64)> = (0..cd.width())
            .flat_map(|k| cd.col(k).iter().map(|e| (e.row, e.col, e.val.to_bits())))
            .collect();
        triplets.sort_unstable();
        let mut want: Vec<(Index, Index, u64)> =
            a.iter().map(|(r, c, v)| (r, c, v.to_bits())).collect();
        want.sort_unstable();
        assert_eq!(triplets, want);
    }

    #[test]
    fn condensed_columns_are_row_sorted_and_width_is_max_row_nnz() {
        let a = uniform::matrix(48, 48, 300, 7);
        let cd = condense(&a);
        let max_row = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap();
        assert_eq!(cd.width(), max_row);
        for k in 0..cd.width() {
            let rows: Vec<Index> = cd.col(k).iter().map(|e| e.row).collect();
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "col {k} not row-sorted");
        }
    }

    #[test]
    fn sparch_matches_reference_product() {
        let a = uniform::matrix(64, 64, 500, 11);
        let b = uniform::matrix(64, 64, 500, 12);
        let c = spgemm_sparch(&a, &b).unwrap();
        let want = ops::spgemm_reference(&a, &b).unwrap();
        assert!(c.approx_eq(&want, 1e-9));
    }

    #[test]
    fn narrow_tree_spills_but_stays_exact() {
        let a = uniform::matrix(64, 64, 600, 13);
        let b = uniform::matrix(64, 64, 600, 14);
        let (c, plan) = spgemm_sparch_with_plan(&a, &b, 2).unwrap();
        assert!(plan.spilled, "2-way tree must spill on a wide condensed A");
        assert!(plan.ops.len() > 1);
        assert!(c.approx_eq(&ops::spgemm_reference(&a, &b).unwrap(), 1e-9));
        // The wide tree computes the same product from the same leaves.
        let (c64, plan64) = spgemm_sparch_with_plan(&a, &b, 64).unwrap();
        assert_eq!(plan.leaf_elems, plan64.leaf_elems);
        assert!(c.approx_eq(&c64, 1e-9));
    }

    #[test]
    fn plan_accounting_is_consistent() {
        let a = uniform::matrix(96, 96, 900, 15);
        let (c, plan) = spgemm_sparch_with_plan(&a, &a, 4).unwrap();
        assert_eq!(plan.result_nnz, c.nnz() as u64);
        assert_eq!(
            plan.total_products() - plan.total_collisions(),
            plan.result_nnz,
            "products minus collisions must equal the surviving non-zeros"
        );
        let flops = ops::spgemm_flops(&a, &a).unwrap();
        assert_eq!(plan.total_products() * 2, flops);
    }

    #[test]
    fn empty_operand_yields_empty_plan() {
        let a = Csr::zero(16, 16);
        let (c, plan) = spgemm_sparch_with_plan(&a, &a, 64).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(plan.condensed_width, 0);
        assert!(plan.ops.is_empty());
        assert!(!plan.spilled);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let a = uniform::matrix(8, 9, 20, 1);
        let b = uniform::matrix(8, 8, 20, 2);
        assert!(spgemm_sparch(&a, &b).is_err());
    }

    #[test]
    fn condense_skips_empty_rows() {
        // nnz ≪ n leaves most rows empty; empty rows contribute nothing to
        // any condensed column, and the product is still exact.
        let a = uniform::matrix(64, 64, 12, 17);
        let cd = condense(&a);
        assert_eq!(cd.nnz(), a.nnz());
        for k in 0..cd.width() {
            for e in cd.col(k) {
                assert!(a.row_nnz(e.row) > k, "entry from a row shorter than col {k}");
            }
        }
        let c = spgemm_sparch(&a, &a).unwrap();
        assert!(c.approx_eq(&ops::spgemm_reference(&a, &a).unwrap(), 1e-9));
    }

    #[test]
    fn condense_stacks_duplicate_column_indices() {
        // Every row holds the same column set, so each condensed column k
        // carries one *identical* B-row index per row of A — the worst case
        // for merge-collision accounting: every product collides.
        let mut coo = outerspace_sparse::Coo::new(16, 16);
        for r in 0..16 {
            for (k, c) in [2u32, 7, 11].into_iter().enumerate() {
                coo.push(r, c, 1.0 + r as Value + k as Value * 0.25);
            }
        }
        let a = coo.to_csr();
        let cd = condense(&a);
        assert_eq!(cd.width(), 3);
        for (k, want_col) in [2u32, 7, 11].into_iter().enumerate() {
            assert_eq!(cd.col(k).len(), 16);
            assert!(cd.col(k).iter().all(|e| e.col == want_col));
        }
        let b = uniform::matrix(16, 16, 80, 18);
        let (c, plan) = spgemm_sparch_with_plan(&a, &b, DEFAULT_MERGE_WAYS).unwrap();
        assert!(c.approx_eq(&ops::spgemm_reference(&a, &b).unwrap(), 1e-9));
        assert!(plan.total_collisions() > 0, "identical column sets must collide");
    }

    #[test]
    fn condense_degenerate_vector_shapes() {
        // 1×N: the single row IS the condensed matrix (width = its nnz,
        // one entry per condensed column).
        let row = uniform::matrix(24, 1, 12, 19).transpose();
        let cd = condense(&row);
        assert_eq!(cd.width(), row.nnz());
        assert!((0..cd.width()).all(|k| cd.col(k).len() == 1));
        // N×1: every row has at most one entry, so width is 1 and the merge
        // tree degenerates to a single stream.
        let col = uniform::matrix(24, 1, 12, 21);
        let cdc = condense(&col);
        assert!(cdc.width() <= 1);
        // (1×N)·(N×1) and (N×1)·(1×N) both stay exact through the pipeline.
        let inner = spgemm_sparch(&row, &col).unwrap();
        assert!(inner.approx_eq(&ops::spgemm_reference(&row, &col).unwrap(), 1e-9));
        let outer_prod = spgemm_sparch(&col, &row).unwrap();
        assert!(outer_prod.approx_eq(&ops::spgemm_reference(&col, &row).unwrap(), 1e-9));
    }
}
