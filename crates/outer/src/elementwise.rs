//! N-way element-wise matrix operations (§5.6).
//!
//! Given matrices `A_1 … A_N` of equal shape, the rows are reorganized into
//! the Fig. 2 intermediate structure (one chunk per source matrix per row)
//! and the merge-phase machinery combines them. The paper observes a
//! one-to-one correspondence between element-wise routines and the merge
//! phase; this module realizes that correspondence directly by reusing
//! [`crate::merge`].

use outerspace_sparse::{Csr, Index, SparseError, Value};

use crate::chunks::{Chunk, PartialProducts};
use crate::merge::{merge, merge_batches_parallel, merge_row, MergeKind, MergeStats};

/// Combines `mats` element-wise with a reduction `op` applied pairwise in
/// matrix order over present entries (absent entries contribute nothing).
///
/// `op` must be associative and commutative for the result to be
/// well-defined (`+`, `min`, `max`, …); multiplication-like semantics that
/// need *intersection* patterns should use
/// [`outerspace_sparse::ops::hadamard`] instead, since merge-style
/// combination operates on the pattern *union*.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if shapes differ, and
/// [`SparseError::MalformedPointers`] if `mats` is empty.
pub fn elementwise_merge<F>(
    mats: &[&Csr],
    op: F,
) -> Result<(Csr, MergeStats), SparseError>
where
    F: Fn(Value, Value) -> Value,
{
    let first = mats.first().ok_or_else(|| {
        SparseError::MalformedPointers("elementwise_merge needs at least one matrix".into())
    })?;
    for m in &mats[1..] {
        if m.nrows() != first.nrows() || m.ncols() != first.ncols() {
            return Err(SparseError::ShapeMismatch {
                left: (first.nrows() as u64, first.ncols() as u64),
                right: (m.nrows() as u64, m.ncols() as u64),
                op: "elementwise",
            });
        }
    }
    // Reorganize: one chunk per matrix per row, exactly the Fig. 2 layout.
    let mut pp = PartialProducts::new(first.nrows(), first.ncols());
    for m in mats {
        for i in 0..m.nrows() {
            let (cols, vals) = m.row(i);
            if !cols.is_empty() {
                pp.push_chunk(i, Chunk { cols: cols.to_vec(), vals: vals.to_vec() });
            }
        }
    }
    // The streaming merge accumulates collisions with `+`; generalize by
    // re-running with the caller's op. To keep the merge code monomorphic,
    // sum-accumulation is the fast path and other ops go through a local
    // union merge.
    if is_plain_sum(&op) {
        return Ok(merge(pp, MergeKind::Streaming));
    }
    let mut row_ptr = vec![0usize];
    let mut out_cols = Vec::new();
    let mut out_vals: Vec<Value> = Vec::new();
    let mut stats = MergeStats::default();
    for i in 0..first.nrows() {
        let chunks = pp.take_row(i);
        let mut heads: Vec<(u32, usize)> = (0..chunks.len() as u32).map(|c| (c, 0)).collect();
        loop {
            // Find the smallest current column among chunk cursors.
            let mut best: Option<(u32, u32)> = None; // (col, chunk)
            for &(ci, pos) in &heads {
                let ch = &chunks[ci as usize];
                if pos < ch.len() {
                    let col = ch.cols[pos];
                    if best.map_or(true, |(bc, _)| col < bc) {
                        best = Some((col, ci));
                    }
                }
            }
            let Some((col, _)) = best else { break };
            let mut acc: Option<Value> = None;
            for (ci, pos) in heads.iter_mut() {
                let ch = &chunks[*ci as usize];
                if *pos < ch.len() && ch.cols[*pos] == col {
                    let v = ch.vals[*pos];
                    acc = Some(match acc {
                        None => v,
                        Some(prev) => {
                            stats.collisions += 1;
                            op(prev, v)
                        }
                    });
                    *pos += 1;
                    stats.bytes_read += 12;
                }
            }
            out_cols.push(col);
            out_vals.push(acc.expect("best column has at least one source"));
            stats.output_entries += 1;
        }
        row_ptr.push(out_cols.len());
    }
    stats.bytes_written = stats.output_entries * 12;
    Ok((
        Csr::from_raw_parts_unchecked(first.nrows(), first.ncols(), row_ptr, out_cols, out_vals),
        stats,
    ))
}

/// Sums `mats` element-wise — the N-way generalization of matrix addition,
/// implemented directly by the merge phase.
///
/// # Errors
///
/// Propagates [`elementwise_merge`] errors.
pub fn sum_all(mats: &[&Csr]) -> Result<(Csr, MergeStats), SparseError> {
    elementwise_merge(mats, std::ops::Add::add)
}

/// [`sum_all`] with `n_threads` workers over work-stealing row batches
/// (see [`crate::worksteal`]). The source rows are borrowed straight from
/// the operands — no intermediate chunk structure is materialized — and the
/// batch-stitched output is identical to [`sum_all`] for every thread
/// count.
///
/// # Errors
///
/// Propagates the same shape/emptiness errors as [`sum_all`].
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn sum_all_parallel(
    mats: &[&Csr],
    n_threads: usize,
) -> Result<(Csr, MergeStats), SparseError> {
    let first = mats.first().ok_or_else(|| {
        SparseError::MalformedPointers("sum_all_parallel needs at least one matrix".into())
    })?;
    for m in &mats[1..] {
        if m.nrows() != first.nrows() || m.ncols() != first.ncols() {
            return Err(SparseError::ShapeMismatch {
                left: (first.nrows() as u64, first.ncols() as u64),
                right: (m.nrows() as u64, m.ncols() as u64),
                op: "elementwise",
            });
        }
    }
    Ok(merge_batches_parallel(
        first.nrows(),
        first.ncols(),
        n_threads,
        &|i, cols, vals, blocked| {
            let slices: Vec<(&[Index], &[Value])> = mats
                .iter()
                .map(|m| m.row(i))
                .filter(|(c, _)| !c.is_empty())
                .collect();
            merge_row(&slices, MergeKind::Streaming, cols, vals, blocked)
        },
    ))
}

/// Detects the plain-`+` reduction so [`elementwise_merge`] can take the
/// merge-phase fast path. Probes the closure on sentinel values; exact for
/// every op whose behaviour on these probes distinguishes it from `+`.
fn is_plain_sum<F: Fn(Value, Value) -> Value>(op: &F) -> bool {
    op(1.5, 2.25) == 3.75 && op(-1.0, 1.0) == 0.0 && op(0.25, 0.5) == 0.75
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;
    use outerspace_sparse::ops;

    #[test]
    fn two_way_sum_matches_reference_add() {
        let a = uniform::matrix(32, 32, 128, 1);
        let b = uniform::matrix(32, 32, 128, 2);
        let (c, _) = sum_all(&[&a, &b]).unwrap();
        let want = ops::add(&a, &b).unwrap();
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn n_way_sum() {
        let mats: Vec<_> = (0..4).map(|s| uniform::matrix(16, 16, 32, s)).collect();
        let refs: Vec<&Csr> = mats.iter().collect();
        let (c, _) = sum_all(&refs).unwrap();
        let mut want = mats[0].clone();
        for m in &mats[1..] {
            want = ops::add(&want, m).unwrap();
        }
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn max_reduction() {
        let a = uniform::matrix(16, 16, 64, 5);
        let b = uniform::matrix(16, 16, 64, 6);
        let (c, _) = elementwise_merge(&[&a, &b], Value::max).unwrap();
        for (r, col, v) in c.iter() {
            let (x, y) = (a.get(r, col), b.get(r, col));
            let want = if x != 0.0 && y != 0.0 { x.max(y) } else if x != 0.0 { x } else { y };
            assert_eq!(v, want);
        }
    }

    #[test]
    fn parallel_sum_is_identical_to_sequential() {
        let mats: Vec<_> = (0..5).map(|s| uniform::matrix(200, 64, 900, s)).collect();
        let refs: Vec<&Csr> = mats.iter().collect();
        let (seq, s_seq) = sum_all(&refs).unwrap();
        for threads in [1, 2, 3, 4] {
            let (par, s_par) = sum_all_parallel(&refs, threads).unwrap();
            assert_eq!(seq, par, "{threads} threads");
            assert_eq!(s_seq.output_entries, s_par.output_entries);
            assert_eq!(s_seq.collisions, s_par.collisions);
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(elementwise_merge(&[], |a, _| a).is_err());
        assert!(sum_all_parallel(&[], 2).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = uniform::matrix(8, 8, 8, 1);
        let b = uniform::matrix(8, 9, 8, 1);
        assert!(sum_all(&[&a, &b]).is_err());
    }

    #[test]
    fn single_matrix_is_identity_op() {
        let a = uniform::matrix(8, 8, 20, 3);
        let (c, _) = sum_all(&[&a]).unwrap();
        assert!(c.approx_eq(&a, 0.0));
    }
}
