//! The multiply phase (§4.1): generate all outer-product partial products.
//!
//! For every index `k` with a non-empty column `k` of `A` *and* row `k` of
//! `B`, each non-zero `a_ik` of the column scales the whole row-of-`B` into
//! one chunk appended to result row `i`. There is no index matching and
//! every fetched non-zero contributes to output — the two properties (§4)
//! that distinguish the outer-product method from inner-product SpGEMM.

use outerspace_sparse::{Csc, Csr, Index, SparseError};

use crate::chunks::{Chunk, MultiplyStats, PartialProducts};
use crate::worksteal::WorkStealQueues;

/// Outer products per work-stealing batch (matches the arena path).
const MULTIPLY_GRAIN: u32 = 8;

/// Runs the multiply phase sequentially in CR mode: `A` in CC format, `B`
/// in CR format (§4's required layouts), producing row-major partial
/// products.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn multiply(a: &Csc, b: &Csr) -> Result<(PartialProducts, MultiplyStats), SparseError> {
    check_shapes(a, b)?;
    let mut pp = PartialProducts::new(a.nrows(), b.ncols());
    let mut stats = MultiplyStats::default();
    for k in 0..a.ncols() {
        outer_product(a, b, k, &mut stats, |i, chunk| pp.push_chunk(i, chunk));
    }
    Ok((pp, stats))
}

/// Runs the multiply phase with `n_threads` workers over work-stealing
/// k-ranges (see [`crate::worksteal`]) — pre-split spans with tail-half
/// stealing instead of the old shared greedy counter, so workers stop
/// contending on one cache line per outer product.
///
/// Each worker buffers `(k, row, chunk)` records locally; a single-threaded
/// pass then replays all records in k-ascending order. Every `k` is owned by
/// exactly one worker and records within a `k` keep column order, so the
/// grouped result is **identical to the sequential [`multiply`]** for every
/// thread count — the schedule cannot leak into the output. (On real
/// OuterSPACE hardware the grouping is free: chunks land in per-row linked
/// lists via atomic pointer bumps. The software pass stands in for that and
/// is O(#chunks log #k).)
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn multiply_parallel(
    a: &Csc,
    b: &Csr,
    n_threads: usize,
) -> Result<(PartialProducts, MultiplyStats), SparseError> {
    assert!(n_threads > 0, "need at least one thread");
    check_shapes(a, b)?;
    let queues = WorkStealQueues::split(a.ncols(), n_threads);

    // One (k, row, chunk) record list plus local stats per worker.
    type WorkerOutput = (Vec<(Index, Index, Chunk)>, MultiplyStats);
    let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|me| {
                let queues = &queues;
                scope.spawn(move || {
                    let mut local: Vec<(Index, Index, Chunk)> = Vec::new();
                    let mut stats = MultiplyStats::default();
                    while let Some((lo, hi)) = queues.take(me, MULTIPLY_GRAIN) {
                        for k in lo..hi {
                            outer_product(a, b, k, &mut stats, |i, chunk| {
                                local.push((k, i, chunk));
                            });
                        }
                    }
                    (local, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut records: Vec<(Index, Index, Chunk)> = Vec::new();
    let mut stats = MultiplyStats::default();
    for (chunks, s) in worker_outputs {
        stats.elementary_products += s.elementary_products;
        stats.chunks += s.chunks;
        stats.nonempty_outer_products += s.nonempty_outer_products;
        stats.bytes_read += s.bytes_read;
        stats.bytes_written += s.bytes_written;
        records.extend(chunks);
    }
    // Stable sort on k alone: one worker owns all of a k's records (already
    // in column order), so equal-k order is preserved and the replay below
    // reproduces the exact sequential push sequence.
    records.sort_by_key(|&(k, ..)| k);
    let mut pp = PartialProducts::new(a.nrows(), b.ncols());
    for (_, i, chunk) in records {
        pp.push_chunk(i, chunk);
    }
    Ok((pp, stats))
}

/// Computes outer product `k` (column-of-`A` × row-of-`B`), emitting one
/// chunk per non-zero of the column through `emit`.
fn outer_product<F: FnMut(Index, Chunk)>(
    a: &Csc,
    b: &Csr,
    k: Index,
    stats: &mut MultiplyStats,
    mut emit: F,
) {
    let (a_rows, a_vals) = a.col(k);
    let (b_cols, b_vals) = b.row(k);
    if a_rows.is_empty() || b_cols.is_empty() {
        // Fig. 2: an empty row-of-B (or column-of-A) produces no outer
        // product at all — those inputs are never even fetched, because the
        // pointer arrays reveal emptiness without touching element data.
        return;
    }
    stats.nonempty_outer_products += 1;
    // Column-of-A and row-of-B are each loaded exactly once per outer
    // product (§4: minimized loads).
    stats.bytes_read += 12 * (a_rows.len() + b_cols.len()) as u64;
    for (&i, &a_ik) in a_rows.iter().zip(a_vals) {
        let vals: Vec<f64> = b_vals.iter().map(|&b_kj| a_ik * b_kj).collect();
        stats.elementary_products += vals.len() as u64;
        stats.bytes_written += 12 * vals.len() as u64;
        stats.chunks += 1;
        emit(i, Chunk { cols: b_cols.to_vec(), vals });
    }
}

fn check_shapes(a: &Csc, b: &Csr) -> Result<(), SparseError> {
    outerspace_sparse::ops::check_spgemm_dims(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::Dense;

    fn fig2_like() -> (Csc, Csr) {
        // B's third row is empty, as in Fig. 2 of the paper.
        let a = Dense::from_row_major(
            4,
            4,
            vec![
                1.0, 0.0, 0.0, 2.0, //
                0.0, 3.0, 0.0, 0.0, //
                0.0, 0.0, 4.0, 0.0, //
                5.0, 0.0, 0.0, 6.0,
            ],
        )
        .to_csr();
        let b = Dense::from_row_major(
            4,
            4,
            vec![
                0.0, 7.0, 0.0, 1.0, //
                2.0, 0.0, 3.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, //
                0.0, 4.0, 5.0, 0.0,
            ],
        )
        .to_csr();
        (a.to_csc(), b)
    }

    #[test]
    fn fig2_empty_row_skips_outer_product() {
        let (a, b) = fig2_like();
        let (_, stats) = multiply(&a, &b).unwrap();
        // Outer products exist for k = 0, 1, 3 only (row 2 of B is empty).
        assert_eq!(stats.nonempty_outer_products, 3);
    }

    #[test]
    fn chunk_count_equals_column_nnz_sum_over_active_k() {
        let (a, b) = fig2_like();
        let (pp, stats) = multiply(&a, &b).unwrap();
        // k=0: col0 of A has 2 nnz; k=1: 1; k=3: 2 => 5 chunks.
        assert_eq!(stats.chunks, 5);
        assert_eq!(pp.total_chunks(), 5);
    }

    #[test]
    fn elementary_products_match_flop_formula() {
        let (a, b) = fig2_like();
        let (_, stats) = multiply(&a, &b).unwrap();
        let flops = outerspace_sparse::ops::spgemm_flops(&a.to_csr(), &b).unwrap();
        assert_eq!(stats.elementary_products * 2, flops);
    }

    #[test]
    fn chunks_carry_scaled_rows() {
        let (a, b) = fig2_like();
        let (pp, _) = multiply(&a, &b).unwrap();
        // Row 1 of the result receives a single chunk from k=1:
        // a[1,1]=3 times row 1 of B = [2,0,3,0] -> cols [0,2], vals [6,9].
        let chunks = pp.row_chunks(1);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].cols, vec![0, 2]);
        assert_eq!(chunks[0].vals, vec![6.0, 9.0]);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // Not just up to chunk order: the k-ordered replay makes the
        // parallel intermediate identical to the sequential one.
        let (a, b) = fig2_like();
        let (pp_seq, s_seq) = multiply(&a, &b).unwrap();
        for threads in [1, 2, 3, 5] {
            let (pp_par, s_par) = multiply_parallel(&a, &b, threads).unwrap();
            assert_eq!(s_seq, s_par, "{threads} threads");
            for i in 0..pp_seq.nrows() {
                assert_eq!(
                    pp_seq.row_chunks(i),
                    pp_par.row_chunks(i),
                    "row {i}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn shape_mismatch_detected() {
        let a = Csc::zero(2, 3);
        let b = Csr::zero(2, 2);
        assert!(multiply(&a, &b).is_err());
        assert!(multiply_parallel(&a, &b, 2).is_err());
    }

    #[test]
    fn empty_operands_yield_empty_products() {
        let a = Csc::zero(4, 4);
        let b = Csr::identity(4);
        let (pp, stats) = multiply(&a, &b).unwrap();
        assert_eq!(pp.total_chunks(), 0);
        assert_eq!(stats.elementary_products, 0);
    }
}
