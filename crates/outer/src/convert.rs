//! Matrix format conversion (§4.3): `I_CC × A_CR → A_CC`.
//!
//! When `A` arrives in CR format it must be converted to CC before the
//! multiply phase. OuterSPACE performs this with its existing datapath, as a
//! multiplication by the identity: a *conversion-load* phase streams `A` into
//! the Fig. 2 intermediate structure (keyed by column instead of row), and a
//! *conversion-merge* phase combines each column's pieces in row order. For
//! chained multiplications (`A × B × C…`) the cost is paid once, and for
//! symmetric matrices it is skipped entirely since CR and CC coincide.

use outerspace_sparse::{Csc, Csr, Index, Value};

/// Counters captured during a format conversion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionStats {
    /// Entries streamed through the conversion (0 when skipped).
    pub entries: u64,
    /// Bytes read in the load phase (12 B per entry).
    pub bytes_read: u64,
    /// Bytes written by load + merge (2 × 12 B per entry).
    pub bytes_written: u64,
    /// True when the conversion was skipped because `A` is symmetric.
    pub skipped_symmetric: bool,
}

/// Converts a CR (CSR) matrix to CC (CSC) with the two-phase scheme of §4.3,
/// returning the converted matrix and the traffic counters.
///
/// Symmetric matrices are detected and returned by relabelling (CR ≡ CC for
/// them), which is how the evaluation avoids charging conversion to the many
/// symmetric SuiteSparse inputs.
pub fn csr_to_csc_via_outer(a: &Csr) -> (Csc, ConversionStats) {
    if a.nrows() == a.ncols() && a.is_symmetric() {
        let stats = ConversionStats { skipped_symmetric: true, ..Default::default() };
        return (a.clone().into_csc_transposed(), stats);
    }
    let mut stats = ConversionStats {
        entries: a.nnz() as u64,
        bytes_read: 12 * a.nnz() as u64,
        bytes_written: 24 * a.nnz() as u64,
        skipped_symmetric: false,
    };

    // Conversion-load: stream rows of A, scattering (row, value) pairs into
    // per-column lists — one linked-list append per entry, exactly the
    // multiply phase's write pattern with I as the left operand.
    let n = a.ncols() as usize;
    let mut col_lists: Vec<Vec<(Index, Value)>> = vec![Vec::new(); n];
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            col_lists[c as usize].push((r, v));
        }
    }

    // Conversion-merge: combine each column's pieces in row order. Rows were
    // streamed in increasing order, so the lists are pre-sorted; the merge
    // degenerates to a gather (the hardware still walks the lists).
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut rows: Vec<Index> = Vec::with_capacity(a.nnz());
    let mut vals: Vec<Value> = Vec::with_capacity(a.nnz());
    for list in &col_lists {
        debug_assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
        for &(r, v) in list {
            rows.push(r);
            vals.push(v);
        }
        col_ptr.push(rows.len());
    }
    stats.entries = a.nnz() as u64;
    (Csc::from_raw_parts_unchecked(a.nrows(), a.ncols(), col_ptr, rows, vals), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::Dense;

    #[test]
    fn conversion_matches_direct_transpose_path() {
        let a = outerspace_gen::uniform::matrix(64, 48, 500, 7);
        let (cc, stats) = csr_to_csc_via_outer(&a);
        assert_eq!(cc, a.to_csc());
        assert!(!stats.skipped_symmetric);
        assert_eq!(stats.entries, 500);
        assert_eq!(stats.bytes_read, 500 * 12);
    }

    #[test]
    fn symmetric_matrix_skips_conversion() {
        let mut d = Dense::zeros(3, 3);
        *d.get_mut(0, 1) = 2.0;
        *d.get_mut(1, 0) = 2.0;
        *d.get_mut(2, 2) = 1.0;
        let a = d.to_csr();
        let (cc, stats) = csr_to_csc_via_outer(&a);
        assert!(stats.skipped_symmetric);
        assert_eq!(stats.bytes_read, 0);
        assert_eq!(cc, a.to_csc());
    }

    #[test]
    fn empty_matrix_conversion() {
        let a = Csr::zero(4, 4);
        // Zero matrix is trivially symmetric -> skipped.
        let (cc, stats) = csr_to_csc_via_outer(&a);
        assert_eq!(cc.nnz(), 0);
        assert!(stats.skipped_symmetric);
    }

    #[test]
    fn rectangular_matrix_conversion() {
        let a = outerspace_gen::uniform::matrix(10, 30, 50, 3);
        let (cc, _) = csr_to_csc_via_outer(&a);
        for (r, c, v) in a.iter() {
            assert_eq!(cc.get(r, c), v);
        }
    }
}
