//! Range-splitting work-stealing queues for the software kernel phases.
//!
//! The multi-threaded multiply/merge/elementwise paths used to pull work
//! items one at a time from a single shared greedy counter — the scheduling
//! model the paper assumes for its PEs (§6), but a measured contention point
//! in software: every worker hammers one cache line per item. This module
//! replaces the counter with the classic range-stealing discipline (the same
//! shape `rayon`'s join splitter and the `dse` sweep executor use, kept
//! std-only here):
//!
//! * the item range `0..n` is pre-split into one contiguous span per worker;
//! * a worker takes *grain*-sized batches off the **head** of its own span —
//!   contention-free in the common case, since nobody else touches that span
//!   until it runs dry;
//! * an idle worker scans the other spans round-robin and steals the **tail
//!   half** of the first non-empty victim, deposits it as its new span, and
//!   continues locally.
//!
//! Each span sits behind its own [`Mutex`]; the lock is uncontended except
//! at steal time, and steals are `O(log n)` per worker by the halving
//! argument. Output determinism is the *caller's* job: batches identify the
//! items they cover, so callers reassemble results in item order and the
//! schedule (who ran what) never leaks into the result — the property the
//! work-stealing determinism regression tests pin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A half-open span of work items.
#[derive(Debug, Clone, Copy)]
struct Span {
    lo: u32,
    hi: u32,
}

impl Span {
    fn len(self) -> u32 {
        self.hi - self.lo
    }
}

/// Per-worker spans over `0..n` with tail-half stealing.
#[derive(Debug)]
pub struct WorkStealQueues {
    spans: Vec<Mutex<Span>>,
    steals: AtomicU64,
}

impl WorkStealQueues {
    /// Pre-splits `0..n` into `workers` contiguous spans (the first
    /// `n % workers` spans get one extra item).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn split(n: u32, workers: usize) -> WorkStealQueues {
        assert!(workers > 0, "need at least one worker");
        let per = n / workers as u32;
        let extra = n % workers as u32;
        let mut spans = Vec::with_capacity(workers);
        let mut lo = 0u32;
        for w in 0..workers as u32 {
            let len = per + u32::from(w < extra);
            spans.push(Mutex::new(Span { lo, hi: lo + len }));
            lo += len;
        }
        WorkStealQueues { spans, steals: AtomicU64::new(0) }
    }

    /// Takes the next batch (at most `grain` items) for worker `me`: from
    /// the head of its own span, or — when that is dry — by stealing the
    /// tail half of another worker's span. Returns `None` only when every
    /// span is empty *at the moment of the scan* (a worker still chewing on
    /// a batch it already took is unaffected: batches are removed from the
    /// spans when taken, so every item is handed out exactly once).
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a valid worker index or `grain == 0`.
    pub fn take(&self, me: usize, grain: u32) -> Option<(u32, u32)> {
        assert!(grain > 0, "grain must be positive");
        // Fast path: the head of my own span. Uncontended unless a thief is
        // simultaneously halving my tail, and even then we touch opposite
        // ends of the range.
        {
            let mut own = lock(&self.spans[me]);
            if own.len() > 0 {
                let lo = own.lo;
                own.lo = lo + grain.min(own.len());
                return Some((lo, own.lo));
            }
        }
        // Steal path: scan victims round-robin starting after me. Copy the
        // stolen half out *before* touching my own span again — holding two
        // span locks at once could deadlock with a symmetric thief.
        for off in 1..self.spans.len() {
            let victim = (me + off) % self.spans.len();
            let stolen = {
                let mut v = lock(&self.spans[victim]);
                let remaining = v.len();
                if remaining == 0 {
                    continue;
                }
                let take = remaining.div_ceil(2);
                let mid = v.hi - take;
                let stolen = Span { lo: mid, hi: v.hi };
                v.hi = mid;
                stolen
            };
            self.steals.fetch_add(1, Ordering::Relaxed);
            let mut own = lock(&self.spans[me]);
            // My span is empty (nobody deposits into another worker's span),
            // so overwriting it cannot discard work.
            debug_assert_eq!(own.len(), 0);
            *own = stolen;
            let lo = own.lo;
            own.lo = lo + grain.min(own.len());
            return Some((lo, own.lo));
        }
        None
    }

    /// Number of successful steals so far (diagnostic; used by tests to
    /// prove stealing actually engages under imbalance).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

fn lock(m: &Mutex<Span>) -> std::sync::MutexGuard<'_, Span> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `work(worker_index, item)` for every item of `0..n` across
/// `n_threads` scoped workers with tail-half stealing. `work` must be
/// schedule-independent (results keyed by item, not by arrival order) for
/// the output to be deterministic.
pub fn for_each_stolen<F>(n: u32, n_threads: usize, grain: u32, work: F) -> u64
where
    F: Fn(usize, u32) + Sync,
{
    let queues = WorkStealQueues::split(n, n_threads);
    std::thread::scope(|scope| {
        for me in 0..n_threads {
            let queues = &queues;
            let work = &work;
            scope.spawn(move || {
                while let Some((lo, hi)) = queues.take(me, grain) {
                    for item in lo..hi {
                        work(me, item);
                    }
                }
            });
        }
    });
    queues.steals()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn split_covers_range_exactly_once_single_worker() {
        let q = WorkStealQueues::split(10, 1);
        let mut seen = Vec::new();
        while let Some((lo, hi)) = q.take(0, 3) {
            seen.extend(lo..hi);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn every_item_handed_out_exactly_once_under_stealing() {
        const N: u32 = 10_000;
        let counts: Vec<AtomicU32> = (0..N).map(|_| AtomicU32::new(0)).collect();
        for_each_stolen(N, 4, 16, |_, item| {
            counts[item as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn imbalanced_load_triggers_steals() {
        // All the expensive items sit in worker 0's span; the others must
        // steal to help or the test would serialize.
        const N: u32 = 64;
        let steals = for_each_stolen(N, 4, 1, |_, item| {
            if item < N / 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        assert!(steals > 0, "no steals despite a 4x imbalanced span");
    }

    #[test]
    fn empty_range_yields_no_batches() {
        let q = WorkStealQueues::split(0, 3);
        for me in 0..3 {
            assert!(q.take(me, 8).is_none());
        }
    }

    #[test]
    fn degenerate_more_workers_than_items() {
        const N: u32 = 3;
        let counts: Vec<AtomicU32> = (0..N).map(|_| AtomicU32::new(0)).collect();
        for_each_stolen(N, 8, 4, |_, item| {
            counts[item as usize].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }
}
